// Package workload generates the deterministic synthetic relations the
// experiments run on: uniform key/payload pairs with controllable join
// selectivity, sorted lists with duplicates, value-multiplicity multisets,
// and column files. All generators are seeded and reproducible.
package workload

import (
	"math/rand"
	"sort"
)

// UniformPairs returns n tuples 〈key, payload〉 with keys uniform in
// [0, keyRange). Join selectivity between two such relations scales with
// 1/keyRange.
func UniformPairs(n int64, keyRange int64, seed int64) []int32 {
	r := rand.New(rand.NewSource(seed))
	if keyRange < 1 {
		keyRange = 1
	}
	out := make([]int32, 0, 2*n)
	for i := int64(0); i < n; i++ {
		out = append(out, int32(r.Int63n(keyRange)), int32(i))
	}
	return out
}

// Ints returns n unsorted integers (arity-1 rows).
func Ints(n int64, valRange int64, seed int64) []int32 {
	r := rand.New(rand.NewSource(seed))
	if valRange < 1 {
		valRange = 1
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(r.Int63n(valRange))
	}
	return out
}

// SortedInts returns n sorted integers with duplicates (dupFactor controls
// how many distinct values exist: n/dupFactor).
func SortedInts(n int64, dupFactor int64, seed int64) []int32 {
	if dupFactor < 1 {
		dupFactor = 1
	}
	vals := Ints(n, maxI64(n/dupFactor, 1), seed)
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// SortedUniqueInts returns n sorted distinct integers.
func SortedUniqueInts(n int64, seed int64) []int32 {
	r := rand.New(rand.NewSource(seed))
	out := make([]int32, n)
	cur := int32(0)
	for i := range out {
		cur += int32(r.Intn(5) + 1)
		out[i] = cur
	}
	return out
}

// ValueMult returns n sorted 〈value, multiplicity〉 pairs with distinct
// values and multiplicities in [1, 10].
func ValueMult(n int64, seed int64) []int32 {
	r := rand.New(rand.NewSource(seed))
	out := make([]int32, 0, 2*n)
	cur := int32(0)
	for i := int64(0); i < n; i++ {
		cur += int32(r.Intn(4) + 1)
		out = append(out, cur, int32(r.Intn(10)+1))
	}
	return out
}

// Column returns one column file of n values.
func Column(n int64, seed int64) []int32 {
	return Ints(n, 1<<30, seed)
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
