// Package plan is the shared plan contract of the synthesis service: the
// request that names a synthesis problem, the content-addressed fingerprint
// that keys it, and the canonical JSON encoding of the synthesized plan that
// both cmd/ocas -json and the ocasd service emit. Because both binaries
// build their output through this package, a plan served from the daemon is
// byte-identical to the plan the CLI prints for the same request.
package plan

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"ocas/internal/codegen"
	"ocas/internal/core"
	"ocas/internal/memory"
	"ocas/internal/ocal"
	"ocas/internal/rules"
)

// Input places one input relation of a request.
type Input struct {
	// Node is the hierarchy node holding the relation.
	Node string `json:"node"`
	// Rows is the relation's cardinality in tuples.
	Rows int64 `json:"rows"`
	// Arity is the number of int attributes per tuple: 1 (a plain list) or
	// 2 (a binary relation, the default).
	Arity int `json:"arity,omitempty"`
}

// Request names one synthesis problem. The zero values of the knob fields
// mean "use the default" (see Normalize). Workers is deliberately excluded
// from the fingerprint: the pipeline is deterministic for any worker count,
// so two requests differing only in Workers ask for the same plan.
type Request struct {
	// Description documents the request (corpus files, dashboards); it is
	// ignored by synthesis and excluded from the fingerprint.
	Description string `json:"description,omitempty"`
	// Program is the naive OCAL specification source.
	Program string `json:"program"`
	// Hier selects a built-in hierarchy (hdd-ram, hdd-ram-cache, two-hdd,
	// hdd-flash); Hierarchy, when set, is an inline JSON node tree and wins.
	Hier      string          `json:"hier,omitempty"`
	RAM       int64           `json:"ram,omitempty"` // built-in hierarchies' RAM size in bytes
	Hierarchy json.RawMessage `json:"hierarchy,omitempty"`

	Inputs       map[string]Input `json:"inputs"`
	Output       string           `json:"output,omitempty"`       // "" = consumed by CPU
	Intermediate string           `json:"intermediate,omitempty"` // scratch device
	// Commutative declares the inputs reorderable; nil means true.
	Commutative *bool `json:"commutative,omitempty"`

	Strategy string `json:"strategy,omitempty"` // exhaustive | beam
	Beam     int    `json:"beam,omitempty"`     // beam width (strategy=beam)
	Depth    int    `json:"depth,omitempty"`    // max derivation length
	Space    int    `json:"space,omitempty"`    // max search space size

	// Workers sizes the worker pool; it affects latency, never the plan.
	Workers int `json:"workers,omitempty"`
}

// Limits the service enforces on user-supplied knobs; a CLI run is local and
// unbounded, but a shared daemon must not let one request monopolize it.
const (
	MaxDepth = 16
	MaxSpace = 200_000
	MaxBeam  = 4096
	// MaxWorkers caps the per-request worker pool. Workers only changes
	// latency, never the plan, so out-of-range values are clamped rather
	// than rejected.
	MaxWorkers = 256
)

// Defaults mirrors cmd/ocas's flag defaults.
const (
	DefaultHier  = "hdd-ram"
	DefaultRAM   = 32 * int64(memory.MiB)
	DefaultDepth = 6
	DefaultSpace = 4000
	DefaultBeam  = 64
)

// Normalize fills in the defaulted fields in place, so that two requests
// spelling the defaults differently (absent vs. explicit) fingerprint
// identically.
func (r *Request) Normalize() {
	if len(r.Hierarchy) == 0 && r.Hier == "" {
		r.Hier = DefaultHier
	}
	if len(r.Hierarchy) > 0 {
		r.Hier, r.RAM = "", 0
	} else if r.RAM == 0 {
		r.RAM = DefaultRAM
	}
	if r.Strategy == "" {
		r.Strategy = "exhaustive"
	}
	if r.Strategy != "beam" {
		r.Beam = 0
	} else if r.Beam == 0 {
		r.Beam = DefaultBeam
	}
	if r.Depth == 0 {
		r.Depth = DefaultDepth
	}
	if r.Space == 0 {
		r.Space = DefaultSpace
	}
	if r.Commutative == nil {
		t := true
		r.Commutative = &t
	}
	if r.Workers < 0 {
		r.Workers = 0
	} else if r.Workers > MaxWorkers {
		r.Workers = MaxWorkers
	}
	for name, in := range r.Inputs {
		if in.Arity == 0 {
			in.Arity = 2
			r.Inputs[name] = in
		}
	}
}

// Compiled is a validated request: the parsed program, the hierarchy, the
// synthesizer configuration and the task, plus the request fingerprint.
type Compiled struct {
	Req         Request
	Prog        ocal.Expr
	H           *memory.Hierarchy
	Synth       *core.Synthesizer
	Task        core.Task
	Fingerprint string
	// TemplateFingerprint keys the request's plan template: the same hash
	// with input cardinalities and hierarchy constants left out, so every
	// request of the same shape shares one template (see template.go).
	TemplateFingerprint string
}

// Compile normalizes and validates a request, returning everything needed
// to run it. Validation rejects unparsable programs, malformed hierarchies,
// inputs placed on unknown nodes, free variables without a placement, and
// out-of-range knobs.
func Compile(req Request) (*Compiled, error) {
	req.Normalize()
	prog, err := ocal.ParseFile(req.Program)
	if err != nil {
		return nil, fmt.Errorf("program: %w", err)
	}
	h, err := buildHierarchy(req)
	if err != nil {
		return nil, err
	}
	if len(req.Inputs) == 0 {
		return nil, fmt.Errorf("request has no inputs")
	}
	if req.Depth < 0 || req.Depth > MaxDepth {
		return nil, fmt.Errorf("depth %d out of range [1,%d]", req.Depth, MaxDepth)
	}
	if req.Space < 0 || req.Space > MaxSpace {
		return nil, fmt.Errorf("space %d out of range [1,%d]", req.Space, MaxSpace)
	}
	switch req.Strategy {
	case "exhaustive":
	case "beam":
		if req.Beam < 1 || req.Beam > MaxBeam {
			return nil, fmt.Errorf("beam width %d out of range [1,%d]", req.Beam, MaxBeam)
		}
	default:
		return nil, fmt.Errorf("unknown strategy %q (want exhaustive or beam)", req.Strategy)
	}

	spec := core.Spec{Name: "request", Prog: prog, Commutative: *req.Commutative}
	task := core.Task{
		InputLoc:     map[string]string{},
		InputRows:    map[string]int64{},
		Output:       req.Output,
		Intermediate: req.Intermediate,
	}
	for _, name := range sortedInputNames(req.Inputs) {
		in := req.Inputs[name]
		if h.Node(in.Node) == nil {
			return nil, fmt.Errorf("input %s: unknown hierarchy node %q", name, in.Node)
		}
		if in.Rows <= 0 {
			return nil, fmt.Errorf("input %s: rows must be positive, got %d", name, in.Rows)
		}
		typ := ocal.TList(ocal.TTuple(ocal.TInt, ocal.TInt))
		switch in.Arity {
		case 1:
			typ = ocal.TList(ocal.TInt)
		case 2:
		default:
			return nil, fmt.Errorf("input %s: arity must be 1 or 2, got %d", name, in.Arity)
		}
		spec.Inputs = append(spec.Inputs, core.InputSpec{Name: name, Type: typ, Arity: in.Arity})
		task.InputLoc[name] = in.Node
		task.InputRows[name] = in.Rows
	}
	if req.Output != "" && h.Node(req.Output) == nil {
		return nil, fmt.Errorf("unknown output node %q", req.Output)
	}
	if req.Intermediate != "" && h.Node(req.Intermediate) == nil {
		return nil, fmt.Errorf("unknown intermediate node %q", req.Intermediate)
	}
	for _, v := range freeVars(prog) {
		if _, ok := req.Inputs[v]; !ok {
			return nil, fmt.Errorf("program references %q, which has no input placement", v)
		}
	}
	task.Spec = spec

	// One Keyer per request: the alpha-normalization of the program done for
	// the fingerprint below is interned, and the synthesizer (seeded with
	// the same program) reuses it. The Keyer dies with the Compiled, so no
	// memo state survives into the next request.
	keys := rules.NewKeyer()
	synth := &core.Synthesizer{H: h, MaxDepth: req.Depth, MaxSpace: req.Space,
		Workers: req.Workers, Keys: keys}
	if req.Strategy == "beam" {
		synth.Strategy = &rules.Beam{Width: req.Beam}
	}
	fp, err := fingerprint(req, prog, h, keys)
	if err != nil {
		return nil, err
	}
	tfp, err := templateFingerprint(req, prog, h, keys)
	if err != nil {
		return nil, err
	}
	return &Compiled{Req: req, Prog: prog, H: h, Synth: synth, Task: task,
		Fingerprint: fp, TemplateFingerprint: tfp}, nil
}

// builtinHier is the one list of named hierarchies; cmd/ocas resolves its
// -hier flag through BuiltinHierarchy so CLI and service cannot drift.
var builtinHier = map[string]func(ram int64) *memory.Hierarchy{
	"hdd-ram":       memory.HDDRAM,
	"hdd-ram-cache": memory.HDDRAMCache,
	"two-hdd":       memory.TwoHDD,
	"hdd-flash":     memory.HDDFlash,
}

// BuiltinHierarchy resolves a built-in hierarchy name; ok is false for
// unknown names (callers typically fall back to reading a JSON file).
func BuiltinHierarchy(name string, ram int64) (h *memory.Hierarchy, ok bool) {
	mk, ok := builtinHier[name]
	if !ok {
		return nil, false
	}
	return mk(ram), true
}

func buildHierarchy(req Request) (*memory.Hierarchy, error) {
	if len(req.Hierarchy) > 0 {
		h, err := memory.FromJSON(req.Hierarchy)
		if err != nil {
			return nil, fmt.Errorf("hierarchy: %w", err)
		}
		return h, nil
	}
	if req.RAM <= 0 {
		return nil, fmt.Errorf("ram must be positive, got %d", req.RAM)
	}
	h, ok := BuiltinHierarchy(req.Hier, req.RAM)
	if !ok {
		return nil, fmt.Errorf("unknown built-in hierarchy %q", req.Hier)
	}
	return h, nil
}

// fingerprint derives the content address of a request: a SHA-256 over the
// alpha-normalized program, the canonical hierarchy JSON, the placement and
// the search knobs. Whitespace, comments, binder names and worker counts
// never change the fingerprint; anything that can change the winning plan
// does.
func fingerprint(req Request, prog ocal.Expr, h *memory.Hierarchy, keys *rules.Keyer) (string, error) {
	hj, err := json.Marshal(h)
	if err != nil {
		return "", fmt.Errorf("hierarchy fingerprint: %w", err)
	}
	var b strings.Builder
	b.WriteString("ocas-plan-v1\n")
	fmt.Fprintf(&b, "prog %s\n", keys.AlphaKey(prog))
	fmt.Fprintf(&b, "hier %s\n", hj)
	for _, name := range sortedInputNames(req.Inputs) {
		in := req.Inputs[name]
		fmt.Fprintf(&b, "in %s=%s:%d:%d\n", name, in.Node, in.Rows, in.Arity)
	}
	fmt.Fprintf(&b, "out %s\nintermediate %s\ncommutative %v\n",
		req.Output, req.Intermediate, *req.Commutative)
	fmt.Fprintf(&b, "strategy %s:%d\ndepth %d\nspace %d\n",
		req.Strategy, req.Beam, req.Depth, req.Space)
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:]), nil
}

func sortedInputNames(in map[string]Input) []string {
	names := make([]string, 0, len(in))
	for n := range in {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// freeVars lists the program's free variables (its input relations) in
// first-occurrence order.
func freeVars(e ocal.Expr) []string {
	var out []string
	seen := map[string]bool{}
	var walk func(e ocal.Expr, bound map[string]bool)
	walk = func(e ocal.Expr, bound map[string]bool) {
		switch t := e.(type) {
		case ocal.Var:
			if !bound[t.Name] && !seen[t.Name] {
				seen[t.Name] = true
				out = append(out, t.Name)
			}
		case ocal.Lam:
			nb := copyBound(bound)
			for _, p := range t.Params {
				nb[p] = true
			}
			walk(t.Body, nb)
		case ocal.For:
			walk(t.Src, bound)
			nb := copyBound(bound)
			nb[t.X] = true
			walk(t.Body, nb)
		default:
			for _, k := range ocal.Children(e) {
				walk(k, bound)
			}
		}
	}
	walk(e, map[string]bool{})
	return out
}

func copyBound(m map[string]bool) map[string]bool {
	n := make(map[string]bool, len(m)+1)
	for k, v := range m {
		n[k] = v
	}
	return n
}

// Plan is the canonical, deterministic encoding of one synthesis result:
// everything cmd/ocas prints (derivation, tuned parameters, cost formula,
// generated C) minus anything run-dependent (wall-clock time). Two runs of
// the same request — CLI or service, one worker or many — produce the same
// Plan bytes.
type Plan struct {
	Fingerprint string `json:"fingerprint"`
	// Spec is the parsed naive specification, printed canonically.
	Spec        string  `json:"spec"`
	SpecSeconds float64 `json:"specSeconds"`
	// Program is the synthesized algorithm.
	Program    string           `json:"program"`
	Derivation []string         `json:"derivation"`
	Params     map[string]int64 `json:"params"`
	Seconds    float64          `json:"seconds"`
	Speedup    float64          `json:"speedup"`
	// CostFormula is the symbolic cost of the winning program.
	CostFormula string `json:"costFormula"`
	SearchSpace int    `json:"searchSpace"`
	SearchDepth int    `json:"searchDepth"`
	Truncated   bool   `json:"truncated,omitempty"`
	// C is the generated C implementation; omitted when the winning program
	// uses a construct the code generator does not support.
	C string `json:"c,omitempty"`
}

// build converts a synthesis result into the canonical plan.
func (c *Compiled) build(res *core.Synthesis) *Plan {
	p := &Plan{
		Fingerprint: c.Fingerprint,
		Spec:        ocal.String(c.Prog),
		SpecSeconds: res.SpecSeconds,
		Program:     ocal.String(res.Best.Expr),
		Derivation:  append([]string{}, res.Best.Steps...),
		Params:      res.Best.Params,
		Seconds:     res.Best.Seconds,
		Speedup:     res.SpecSeconds / res.Best.Seconds,
		CostFormula: res.Best.Cost.Seconds.String(),
		SearchSpace: res.Stats.SpaceSize,
		SearchDepth: res.Stats.MaxDepth,
		Truncated:   res.Stats.Truncated,
	}
	if p.Params == nil {
		p.Params = map[string]int64{}
	}
	arities := map[string]int{}
	for _, in := range c.Task.Spec.Inputs {
		arities[in.Name] = in.Arity
	}
	csrc, err := codegen.Generate(res.Best.Expr, codegen.Options{
		FuncName:   "ocas_query",
		Params:     res.Best.Params,
		InputArity: arities,
		Output:     c.Req.Output != "",
	})
	if err == nil {
		p.C = csrc
	}
	return p
}

// Run synthesizes the compiled request under ctx and returns its plan.
func (c *Compiled) Run(ctx context.Context) (*Plan, error) {
	res, err := c.Synth.SynthesizeCtx(ctx, c.Task)
	if err != nil {
		return nil, err
	}
	return c.finishPlan(res)
}

// finishPlan builds the canonical plan and rejects degenerate results: the
// screening pass encodes "could not be costed" as ±Inf/NaN; a plan carrying
// such an estimate is degenerate, and non-finite floats do not survive JSON
// encoding (Encode relies on every Plan being encodable).
func (c *Compiled) finishPlan(res *core.Synthesis) (*Plan, error) {
	p := c.build(res)
	for _, f := range []float64{p.SpecSeconds, p.Seconds, p.Speedup} {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, fmt.Errorf("plan has a non-finite cost estimate (spec %v, best %v)",
				p.SpecSeconds, p.Seconds)
		}
	}
	return p, nil
}

// Execute compiles and runs a request: the one entry point shared by
// cmd/ocas -json and the service's cache-miss path.
func Execute(ctx context.Context, req Request) (*Plan, error) {
	c, err := Compile(req)
	if err != nil {
		return nil, err
	}
	return c.Run(ctx)
}

// Encode renders the canonical plan bytes: indented JSON with a trailing
// newline. Go's encoding/json sorts map keys, so the encoding is a pure
// function of the plan.
func Encode(p *Plan) []byte {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		// A Plan holds only strings, numbers and bools; Marshal cannot fail.
		panic(err)
	}
	return append(b, '\n')
}

// Decode parses plan bytes produced by Encode.
func Decode(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}
	return &p, nil
}
