// execute.go is the shared execution path of the stack: it runs a
// synthesized program — fresh from the synthesizer or recalled from the
// plan cache — against the storage simulator on request-supplied or
// generated inputs, and reports the virtual-clock time, the per-device
// ledger and a content digest of the output. cmd/ocas -run, the ocasd
// POST /execute endpoint and the calibration experiment all go through
// RunProgram, so a plan executes identically no matter which door it
// entered through.
package plan

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"ocas/internal/catalog"
	"ocas/internal/core"
	"ocas/internal/exec"
	"ocas/internal/memory"
	"ocas/internal/obs"
	"ocas/internal/ocal"
	"ocas/internal/storage"
	"ocas/internal/workload"
)

// ExecOptions tunes one execution of a plan. All fields are optional.
type ExecOptions struct {
	// BatchRows is the operator exchange batch size (0 = executor default).
	BatchRows int64 `json:"batchRows,omitempty"`
	// PoolBytes bounds the executor's buffer pool; 0 defaults to the
	// hierarchy's RAM size, < 0 means unlimited.
	PoolBytes int64 `json:"poolBytes,omitempty"`
	// Seed drives the deterministic input generators.
	Seed int64 `json:"seed,omitempty"`
	// Rows overrides the generated row count per input (execution only —
	// the plan stays tuned for the request's nominal sizes).
	Rows map[string]int64 `json:"rows,omitempty"`
	// Inputs supplies explicit rows per input, each row a tuple of ints
	// matching the input's arity. Inputs listed here ignore Rows/Seed.
	Inputs map[string][][]int64 `json:"inputs,omitempty"`
	// Tables binds inputs to durable catalog tables by name: the input's
	// rows come from the table's columnar segments (plus its buffered tail)
	// instead of Inputs or the generators. A bound input's executed row
	// count is the table's row count; Rows/Inputs entries for it are
	// rejected. Requires Cat.
	Tables map[string]string `json:"tables,omitempty"`
	// Cat resolves Tables. It is infrastructure wiring (set by ocasd or the
	// CLI from their -data directory), never part of a request body.
	Cat *catalog.Catalog `json:"-"`
	// ExecWorkers bounds the morsel-driven executor's concurrent partition
	// tasks (0 or 1: single-worker; capped at MaxExecWorkers). Worker count
	// never changes the output digest or the device ledgers — partition
	// degrees are plan-decided — only the wall-clock time.
	ExecWorkers int `json:"execWorkers,omitempty"`
	// Explain instruments the run per operator and attaches the EXPLAIN
	// ANALYZE tree to the report. Purely a transport option: it never enters
	// the plan fingerprint and changes neither the output nor the ledgers.
	Explain bool `json:"explain,omitempty"`
	// Backend selects the execution backend: "interpreted" (default) steps
	// plans through the generic closure interpreter, "fused" compiles each
	// plan's inner chains into specialized selection-vector kernels. The
	// backend never changes the output digest, the device ledgers, the
	// virtual clock or the EXPLAIN counters — simulated charges are a
	// function of the plan, not of how its loops are stepped.
	Backend string `json:"backend,omitempty"`
}

// MaxExecWorkers is the executor's concurrency ceiling (partition degrees
// never exceed it); admission layers clamp requested worker counts against
// it so no request holds capacity the executor cannot use.
const MaxExecWorkers = exec.MaxWorkers

// Execution backend names accepted by ExecOptions.Backend (and the ocasd
// -exec-backend / ocas -backend flags).
const (
	BackendInterpreted = exec.BackendInterpreted
	BackendFused       = exec.BackendFused
)

// DeviceReport is one device's ledger after execution: the paper's two
// event kinds (InitCom, UnitTr) split by direction.
type DeviceReport struct {
	ReadInits  int64 `json:"readInits"`
	WriteInits int64 `json:"writeInits"`
	BytesRead  int64 `json:"bytesRead"`
	BytesWrite int64 `json:"bytesWrite"`
}

// ExecReport is the machine-readable result of one execution.
type ExecReport struct {
	Fingerprint string           `json:"fingerprint,omitempty"`
	Program     string           `json:"program"`
	Params      map[string]int64 `json:"params"`
	// InputRows records the row counts actually executed.
	InputRows map[string]int64 `json:"inputRows"`
	OutRows   int64            `json:"outRows"`
	// OutDigest is a SHA-256 over the sorted output bag (or the scalar
	// result), so two executions can be compared without shipping rows.
	OutDigest string `json:"outDigest"`
	// Result is the scalar value of an aggregation program.
	Result string `json:"result,omitempty"`
	// VirtualSeconds is the storage simulator's clock after the run —
	// the measured counterpart of the cost model's estimate.
	VirtualSeconds float64 `json:"virtualSeconds"`
	// PredictedSeconds is the plan's estimated cost (cost.Estimate after
	// parameter tuning); the measured-vs-predicted ratio is the paper's
	// accuracy metric.
	PredictedSeconds float64                 `json:"predictedSeconds,omitempty"`
	Devices          map[string]DeviceReport `json:"devices"`
	Pool             storage.PoolStats       `json:"pool"`
	BatchRows        int64                   `json:"batchRows"`
	// ExecWorkers is the effective executor worker count and Workers the
	// per-worker-lane charge aggregates (partition tasks map to lanes
	// deterministically, so the report is stable run to run).
	ExecWorkers    int                 `json:"execWorkers,omitempty"`
	Workers        []exec.WorkerLedger `json:"workers,omitempty"`
	CacheMissRatio float64             `json:"cacheMissRatio,omitempty"`
	// Explain is the per-operator EXPLAIN ANALYZE tree (ExecOptions.Explain).
	Explain *ExplainOp `json:"explain,omitempty"`
}

// RunProgram executes a synthesized program against a fresh simulator of h.
// The task supplies placement and nominal sizes; opt may override sizes or
// supply rows outright.
func RunProgram(ctx context.Context, h *memory.Hierarchy, prog ocal.Expr, params map[string]int64, task core.Task, opt ExecOptions) (*ExecReport, error) {
	sim := storage.NewSim(h)
	sim.DefaultCPU()

	if err := checkTableBindings(task, opt); err != nil {
		return nil, err
	}
	inputs := map[string]*exec.Table{}
	inputRows := map[string]int64{}
	var scratch *storage.Device
	var handles []*catalog.Handle
	defer func() {
		// Handles stay open for the run: backed tables materialize their
		// payload lazily on first read.
		for _, h := range handles {
			h.Close()
		}
	}()
	for i, in := range task.Spec.Inputs {
		dev, err := sim.Device(task.InputLoc[in.Name])
		if err != nil {
			return nil, err
		}
		if scratch == nil {
			scratch = dev
		}
		var tb *exec.Table
		if tname, bound := opt.Tables[in.Name]; bound {
			h, err := openTableInput(opt.Cat, in, tname)
			if err != nil {
				return nil, err
			}
			handles = append(handles, h)
			tb, err = exec.NewBackedTable(dev, in.Arity, h.Rows(), h)
			if err != nil {
				return nil, err
			}
			inputRows[in.Name] = h.Rows()
		} else {
			rows, err := inputData(in, task, opt, i)
			if err != nil {
				return nil, err
			}
			tb, err = exec.NewTable(dev, in.Arity, int64(len(rows)/in.Arity)+8)
			if err != nil {
				return nil, err
			}
			if err := tb.Preload(rows); err != nil {
				return nil, err
			}
			inputRows[in.Name] = int64(len(rows) / in.Arity)
		}
		inputs[in.Name] = tb
	}
	if task.Intermediate != "" {
		dev, err := sim.Device(task.Intermediate)
		if err != nil {
			return nil, err
		}
		scratch = dev
	}
	if scratch == nil {
		return nil, fmt.Errorf("plan: no device to execute on")
	}

	var digest bagDigest
	sink := &exec.Sink{Sim: sim, Bout: outBlock(params), Tap: digest.add}
	if task.Output != "" {
		outDev, err := sim.Device(task.Output)
		if err != nil {
			return nil, err
		}
		sink.Alloc = func(arity int) (*exec.Table, error) {
			return exec.NewTable(outDev, arity, 0)
		}
	}

	p, err := exec.Lower(prog, exec.LowerOpts{
		Sim: sim, Inputs: inputs, Params: params,
		Scratch: scratch, Sink: sink,
		RAMBytes:    ramBytes(h),
		PoolBytes:   opt.PoolBytes,
		BatchRows:   opt.BatchRows,
		ExecWorkers: opt.ExecWorkers,
		Context:     ctx,
		Explain:     opt.Explain,
		Backend:     opt.Backend,
	})
	if err != nil {
		return nil, fmt.Errorf("plan: lower: %w", err)
	}
	_, spRun := obs.Start(ctx, "exec.run")
	if err := p.Run(); err != nil {
		return nil, fmt.Errorf("plan: execute: %w", err)
	}
	if spRun != nil {
		spRun.AddVirt(sim.Clock.Seconds())
		spRun.Attr("rows", sink.RowsWritten)
		spRun.Attr("workers", p.Workers())
		spRun.End()
	}
	if sink.Err != nil {
		return nil, fmt.Errorf("plan: output allocation: %w", sink.Err)
	}

	rep := &ExecReport{
		Program:        ocal.String(prog),
		Params:         params,
		InputRows:      inputRows,
		OutRows:        sink.RowsWritten,
		VirtualSeconds: sim.Clock.Seconds(),
		Devices:        map[string]DeviceReport{},
		Pool:           p.Pool().Stats(),
		BatchRows:      opt.BatchRows,
		ExecWorkers:    p.Workers(),
	}
	if rep.ExecWorkers > 1 {
		rep.Workers = p.WorkerLedgers()
	}
	if rep.Params == nil {
		rep.Params = map[string]int64{}
	}
	if p.Scalar {
		rep.Result = p.Result.String()
		rep.OutDigest = digestString(rep.Result)
	} else {
		rep.OutDigest = digest.hex()
	}
	for name, d := range sim.Devices {
		rep.Devices[name] = DeviceReport{
			ReadInits:  d.Led.ReadInits,
			WriteInits: d.Led.WriteInits,
			BytesRead:  d.Led.BytesRead,
			BytesWrite: d.Led.BytesWrite,
		}
	}
	if sim.Cache != nil {
		rep.CacheMissRatio = sim.Cache.MissRatio()
	}
	if tree := p.ExplainTree(); tree != nil {
		place := (&core.Synthesizer{}).TaskPlacement(task)
		rep.Explain = explainReport(h, place, explainEnv(task, inputRows, params), tree)
	}
	return rep, nil
}

// ExecutePlan re-parses a (possibly cached) plan's program and runs it for
// the compiled request that produced it.
func ExecutePlan(ctx context.Context, c *Compiled, p *Plan, opt ExecOptions) (*ExecReport, error) {
	prog, err := ocal.ParseFile(p.Program)
	if err != nil {
		return nil, fmt.Errorf("plan: program does not re-parse: %w", err)
	}
	rep, err := RunProgram(ctx, c.H, prog, p.Params, c.Task, opt)
	if err != nil {
		return nil, err
	}
	rep.Fingerprint = p.Fingerprint
	rep.PredictedSeconds = p.Seconds
	return rep, nil
}

// checkTableBindings validates ExecOptions.Tables against the task: every
// bound name must be a declared input, the catalog must be configured, and
// a bound input cannot also carry a Rows override or explicit Inputs (the
// table decides its own cardinality).
func checkTableBindings(task core.Task, opt ExecOptions) error {
	if len(opt.Tables) == 0 {
		return nil
	}
	if opt.Cat == nil {
		return fmt.Errorf("plan: exec.tables given but no catalog is configured")
	}
	declared := map[string]bool{}
	for _, in := range task.Spec.Inputs {
		declared[in.Name] = true
	}
	for name := range opt.Tables {
		if !declared[name] {
			return fmt.Errorf("plan: exec.tables binds %q, which is not an input of the program", name)
		}
		if _, ok := opt.Rows[name]; ok {
			return fmt.Errorf("plan: input %q has both a table binding and a rows override", name)
		}
		if _, ok := opt.Inputs[name]; ok {
			return fmt.Errorf("plan: input %q has both a table binding and explicit inputs", name)
		}
	}
	return nil
}

// openTableInput opens the catalog snapshot feeding one bound input and
// checks its shape.
func openTableInput(cat *catalog.Catalog, in core.InputSpec, tname string) (*catalog.Handle, error) {
	h, err := cat.OpenTable(tname)
	if err != nil {
		return nil, fmt.Errorf("plan: input %s: %w", in.Name, err)
	}
	if h.Arity() != in.Arity {
		h.Close()
		return nil, fmt.Errorf("plan: input %s wants arity %d but table %q has %d columns",
			in.Name, in.Arity, tname, h.Arity())
	}
	return h, nil
}

// inputData resolves one input's rows: explicit rows win, then generated
// data of the overridden or nominal size.
func inputData(in core.InputSpec, task core.Task, opt ExecOptions, idx int) ([]int32, error) {
	if rows, ok := opt.Inputs[in.Name]; ok {
		flat := make([]int32, 0, len(rows)*in.Arity)
		for rI, row := range rows {
			if len(row) != in.Arity {
				return nil, fmt.Errorf("input %s row %d has %d attributes, want %d",
					in.Name, rI, len(row), in.Arity)
			}
			for _, v := range row {
				if v < -1<<31 || v > 1<<31-1 {
					return nil, fmt.Errorf("input %s row %d value %d outside int32", in.Name, rI, v)
				}
				flat = append(flat, int32(v))
			}
		}
		return flat, nil
	}
	n := task.InputRows[in.Name]
	if o, ok := opt.Rows[in.Name]; ok && o > 0 {
		n = o
	}
	if n < 0 {
		n = 0
	}
	seed := opt.Seed + int64(idx)*7919
	switch in.Arity {
	case 1:
		// Sorted with duplicates: valid for merges, set operations and
		// duplicate removal; sorting and folds accept any order.
		return workload.SortedInts(n, 4, seed), nil
	default:
		// Key-sorted pairs: valid for the streaming group-by, neutral for
		// joins and aggregations.
		return sortedPairs(n, seed), nil
	}
}

// GeneratedPairs returns the exact flat rows the executor's arity-2 input
// generator produces for n rows under seed — what inputData feeds an
// unbound input whose per-input seed is opt.Seed + inputIndex*7919. Ingest
// differentials (tests, the bench harness, the CI smoke job) load these
// rows into a catalog table so a durable scan is comparable to a generated
// run value for value.
func GeneratedPairs(n, seed int64) []int32 { return sortedPairs(n, seed) }

// GeneratedInts is GeneratedPairs' arity-1 counterpart.
func GeneratedInts(n, seed int64) []int32 { return workload.SortedInts(n, 4, seed) }

// sortedPairs generates n 〈key, payload〉 tuples sorted by key.
func sortedPairs(n, seed int64) []int32 {
	keyRange := n / 2
	if keyRange < 8 {
		keyRange = 8
	}
	rows := workload.UniformPairs(n, keyRange, seed)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return rows[idx[a]*2] < rows[idx[b]*2] })
	out := make([]int32, 0, len(rows))
	for _, i := range idx {
		out = append(out, rows[i*2], rows[i*2+1])
	}
	return out
}

// bagDigest accumulates an order-independent digest of a row bag in
// constant memory: each row hashes independently and the 256-bit row
// hashes are summed modulo 2^256. Summation (unlike XOR) distinguishes
// multiplicities, and commutativity makes the digest independent of
// batch sizes, pool budgets and operator scheduling — without retaining
// the (potentially enormous) output.
type bagDigest struct {
	acc [sha256.Size]byte
	buf []byte
}

func (d *bagDigest) add(row []int32) {
	d.buf = d.buf[:0]
	d.buf = binary.LittleEndian.AppendUint32(d.buf, uint32(len(row)))
	for _, v := range row {
		d.buf = binary.LittleEndian.AppendUint32(d.buf, uint32(v))
	}
	h := sha256.Sum256(d.buf)
	carry := uint16(0)
	for i := sha256.Size - 1; i >= 0; i-- {
		s := uint16(d.acc[i]) + uint16(h[i]) + carry
		d.acc[i] = byte(s)
		carry = s >> 8
	}
}

func (d *bagDigest) hex() string { return hex.EncodeToString(d.acc[:]) }

// digestRows hashes a row bag in one call (the differential tests' side
// of the comparison).
func digestRows(rows [][]int32) string {
	var d bagDigest
	for _, row := range rows {
		d.add(row)
	}
	return d.hex()
}

func digestString(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

// ramBytes returns the size of the hierarchy's RAM level (the node named
// "ram", else the root).
func ramBytes(h *memory.Hierarchy) int64 {
	if n := h.Node("ram"); n != nil {
		return n.Size
	}
	return h.Root.Size
}

// outBlock picks the output buffer value the optimizer chose (parameters
// introduced by apply-block-out are named ko*, by the merging treeFold
// bout*).
func outBlock(params map[string]int64) int64 {
	var best int64 = 1
	for name, v := range params {
		if strings.HasPrefix(name, "ko") || strings.HasPrefix(name, "bout") {
			if v > best {
				best = v
			}
		}
	}
	return best
}
