package plan

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ocas/internal/catalog"
)

// assertBackendEqual enforces the fused backend's contract at plan level:
// everything observable about an execution except host wall-clock must be
// byte-identical to the interpreted run — charges are a function of the
// plan, never of the backend stepping its loops.
func assertBackendEqual(t *testing.T, label string, interp, fused *ExecReport) {
	t.Helper()
	if fused.OutDigest != interp.OutDigest {
		t.Errorf("%s: fused digest %s differs from interpreted %s", label, fused.OutDigest, interp.OutDigest)
	}
	if fused.OutRows != interp.OutRows {
		t.Errorf("%s: fused wrote %d rows, interpreted %d", label, fused.OutRows, interp.OutRows)
	}
	if fused.Result != interp.Result {
		t.Errorf("%s: fused result %q, interpreted %q", label, fused.Result, interp.Result)
	}
	if fused.VirtualSeconds != interp.VirtualSeconds {
		t.Errorf("%s: fused virtual clock %v differs from interpreted %v",
			label, fused.VirtualSeconds, interp.VirtualSeconds)
	}
	if !reflect.DeepEqual(fused.Devices, interp.Devices) {
		t.Errorf("%s: device ledgers differ\nfused: %+v\ninterp: %+v", label, fused.Devices, interp.Devices)
	}
	if fused.Pool != interp.Pool {
		t.Errorf("%s: pool stats differ\nfused: %+v\ninterp: %+v", label, fused.Pool, interp.Pool)
	}
	if !reflect.DeepEqual(fused.Workers, interp.Workers) {
		t.Errorf("%s: worker lane ledgers differ\nfused: %+v\ninterp: %+v", label, fused.Workers, interp.Workers)
	}
	NormalizeExplain(fused.Explain)
	NormalizeExplain(interp.Explain)
	if !reflect.DeepEqual(fused.Explain, interp.Explain) {
		fj, _ := json.Marshal(fused.Explain)
		ij, _ := json.Marshal(interp.Explain)
		t.Errorf("%s: EXPLAIN ANALYZE trees differ\nfused: %s\ninterp: %s", label, fj, ij)
	}
}

// TestExamplesBackendDifferential runs every examples/ corpus request (at
// test scale) under both execution backends at several batch sizes with
// EXPLAIN ANALYZE on, and requires the full observable report — digest,
// row count, virtual clock, per-device ledgers, pool stats and per-operator
// row/batch/byte counters — to be identical.
func TestExamplesBackendDifferential(t *testing.T) {
	dirs, err := filepath.Glob("../../examples/*/request.json")
	if err != nil || len(dirs) == 0 {
		t.Fatalf("no example requests found: %v", err)
	}
	for _, reqPath := range dirs {
		name := filepath.Base(filepath.Dir(reqPath))
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(reqPath)
			if err != nil {
				t.Fatal(err)
			}
			var req Request
			if err := json.Unmarshal(data, &req); err != nil {
				t.Fatal(err)
			}
			scaleRequest(&req, 2048)
			c, err := Compile(req)
			if err != nil {
				t.Fatal(err)
			}
			p, err := c.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			for _, batch := range []int64{1, 64} {
				opt := ExecOptions{Seed: 42, BatchRows: batch, Explain: true}
				interp, err := ExecutePlan(context.Background(), c, p, opt)
				if err != nil {
					t.Fatalf("interpreted (batch %d): %v", batch, err)
				}
				opt.Backend = BackendFused
				fused, err := ExecutePlan(context.Background(), c, p, opt)
				if err != nil {
					t.Fatalf("fused (batch %d): %v", batch, err)
				}
				assertBackendEqual(t, name, interp, fused)
			}
		})
	}
}

// TestBackendWorkerSweep crosses the two backends with the morsel-driven
// worker counts: at every parallelism degree the fused report must match
// the interpreted one exactly (the per-lane ledgers included — partition
// tasks map to lanes deterministically under both backends).
func TestBackendWorkerSweep(t *testing.T) {
	req := Request{
		Program: "flatMap(\\<p1, p2> -> for (xB [k1] <- p1) for (yB [k2] <- p2) " +
			"for (x <- xB) for (y <- yB) if x.1 == y.1 then [<x, y>] else [])" +
			"(zip[2](partition[s](R), partition[s](S)))",
		Inputs: map[string]Input{
			"R": {Node: "hdd", Rows: 4096},
			"S": {Node: "hdd", Rows: 8192},
		},
		RAM:   256 << 10,
		Depth: 2, Space: 200,
	}
	c, err := Compile(req)
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		opt := ExecOptions{Seed: 11, ExecWorkers: workers, Explain: true}
		interp, err := ExecutePlan(context.Background(), c, p, opt)
		if err != nil {
			t.Fatalf("interpreted (workers %d): %v", workers, err)
		}
		opt.Backend = BackendFused
		fused, err := ExecutePlan(context.Background(), c, p, opt)
		if err != nil {
			t.Fatalf("fused (workers %d): %v", workers, err)
		}
		assertBackendEqual(t, opt.Backend, interp, fused)
		if fused.ExecWorkers != interp.ExecWorkers {
			t.Errorf("workers %d: effective counts differ: fused %d interp %d",
				workers, fused.ExecWorkers, interp.ExecWorkers)
		}
	}
}

// TestDurableBackendDifferential closes the input-source quadrant: rows
// ingested into a durable catalog and scanned back through segments must
// produce the same digest, clock and ledgers whichever backend executes —
// and both must match the generated-row interpreted baseline.
func TestDurableBackendDifferential(t *testing.T) {
	req := Request{
		Program: "flatMap(\\<p1, p2> -> for (xB [k1] <- p1) for (yB [k2] <- p2) " +
			"for (x <- xB) for (y <- yB) if x.1 == y.1 then [<x, y>] else [])" +
			"(zip[2](partition[s](R), partition[s](S)))",
		Inputs: map[string]Input{
			"R": {Node: "hdd", Rows: 1024},
			"S": {Node: "hdd", Rows: 2048},
		},
		RAM:   64 << 10,
		Depth: 2, Space: 200,
	}
	c, err := Compile(req)
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	base := ExecOptions{Seed: 42, PoolBytes: 16 << 10}
	cat, err := catalog.Open(t.TempDir(), catalog.Options{FlushRows: 257, ChunkRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	tables := ingestGenerated(t, cat, c, base)

	want, err := ExecutePlan(context.Background(), c, p, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, backend := range []string{BackendInterpreted, BackendFused} {
		opt := base
		opt.Backend = backend
		opt.Tables = tables
		opt.Cat = cat
		got, err := ExecutePlan(context.Background(), c, p, opt)
		if err != nil {
			t.Fatalf("%s over durable tables: %v", backend, err)
		}
		if got.OutDigest != want.OutDigest || got.OutRows != want.OutRows {
			t.Errorf("%s over durable tables: digest %s/%d rows, generated baseline %s/%d",
				backend, got.OutDigest, got.OutRows, want.OutDigest, want.OutRows)
		}
		if got.VirtualSeconds != want.VirtualSeconds {
			t.Errorf("%s over durable tables: clock %v, baseline %v", backend, got.VirtualSeconds, want.VirtualSeconds)
		}
		if !reflect.DeepEqual(got.Devices, want.Devices) {
			t.Errorf("%s over durable tables: ledgers differ\n got: %+v\nwant: %+v", backend, got.Devices, want.Devices)
		}
	}
}

// TestExecBackendValidation: unknown backend names are rejected before any
// execution; the documented names (and empty) are accepted.
func TestExecBackendValidation(t *testing.T) {
	req := Request{
		Program: "foldL(0, \\<a, x> -> (a + x.2))(R)",
		Inputs:  map[string]Input{"R": {Node: "hdd", Rows: 256}},
		Depth:   3, Space: 200,
	}
	c, err := Compile(req)
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	_, err = ExecutePlan(context.Background(), c, p, ExecOptions{Seed: 1, Backend: "jit"})
	if err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Errorf("unknown backend must be rejected, got %v", err)
	}
	for _, b := range []string{"", BackendInterpreted, BackendFused} {
		if _, err := ExecutePlan(context.Background(), c, p, ExecOptions{Seed: 1, Backend: b}); err != nil {
			t.Errorf("backend %q must be accepted: %v", b, err)
		}
	}
}
