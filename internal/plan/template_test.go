package plan

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// diffShape is one generated request shape: everything but the input
// cardinalities (and the hierarchy RAM size, which the sweep perturbs to
// force a guard rejection).
type diffShape struct {
	program  string
	inputs   []string // input names, in placement order
	hier     string
	output   string
	strategy string
	beam     int
	depth    int
	space    int
}

// genShapes produces n distinct program shapes from a seeded grammar:
// scans, filters, projections, equi-joins and self-joins with varying
// predicates, in both exhaustive and (narrow) beam flavors.
func genShapes(rng *rand.Rand, n int) []diffShape {
	preds := []string{"x.1 == y.1", "x.2 == y.1", "x.1 == y.2", "x.2 == y.2"}
	projs := []string{"[<x, y>]", "[<x.1, y.2>]", "[<x.2, y.1>]"}
	seen := map[string]bool{}
	var out []diffShape
	for len(out) < n {
		var s diffShape
		switch rng.Intn(5) {
		case 0: // scan + projection
			s.program = fmt.Sprintf("for (x <- R) [<x.%d, x.%d>]", 1+rng.Intn(2), 1+rng.Intn(2))
			s.inputs = []string{"R"}
		case 1: // constant filter
			s.program = fmt.Sprintf("for (x <- R) if x.%d == %d then [x] else []",
				1+rng.Intn(2), rng.Intn(9))
			s.inputs = []string{"R"}
		case 2: // self-join
			s.program = fmt.Sprintf("for (x <- R) for (y <- R) if %s then %s else []",
				preds[rng.Intn(len(preds))], projs[rng.Intn(len(projs))])
			s.inputs = []string{"R"}
		default: // binary equi-join
			s.program = fmt.Sprintf("for (x <- R) for (y <- S) if %s then %s else []",
				preds[rng.Intn(len(preds))], projs[rng.Intn(len(projs))])
			s.inputs = []string{"R", "S"}
		}
		s.hier = "hdd-ram"
		if rng.Intn(4) == 0 {
			s.hier = "hdd-ram-cache"
		}
		if rng.Intn(3) == 0 {
			s.output = "hdd"
		}
		s.strategy = "exhaustive"
		s.depth, s.space = 3, 150
		if rng.Intn(4) == 0 {
			s.strategy = "beam"
			s.beam = 2 + rng.Intn(4)
			s.depth, s.space = 4, 200
		}
		key := fmt.Sprintf("%s|%s|%s|%s|%d", s.program, s.hier, s.output, s.strategy, s.beam)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, s)
	}
	return out
}

// request binds a shape at concrete cardinalities.
func (s diffShape) request(rows map[string]int64, ram int64) Request {
	req := Request{
		Program:  s.program,
		Hier:     s.hier,
		RAM:      ram,
		Inputs:   map[string]Input{},
		Output:   s.output,
		Strategy: s.strategy,
		Beam:     s.beam,
		Depth:    s.depth,
		Space:    s.space,
	}
	for _, name := range s.inputs {
		req.Inputs[name] = Input{Node: "hdd", Rows: rows[name]}
	}
	return req
}

// sweepRows picks a cardinality ladder spanning execution regimes under an
// 8 MiB RAM budget: fully in-RAM, around the boundary, and far out of core
// (GRACE/multi-pass territory).
var regimeLadder = []int64{1 << 8, 1 << 14, 1 << 19, 1 << 22}

func sweepRows(rng *rand.Rand, inputs []string) map[string]int64 {
	rows := map[string]int64{}
	for _, name := range inputs {
		rows[name] = regimeLadder[rng.Intn(len(regimeLadder))]
	}
	return rows
}

const diffRAM = 8 << 20

// TestTemplateDifferential is the template equivalence proof: for ~50
// generated shapes, capture a template at one cardinality point and assert
// that instantiating it at every other swept point yields byte-identical
// plan JSON (params, costs, derivation, fingerprint — everything) to a cold
// full search at that point. Every tenth shape also perturbs a hierarchy
// constant, where the guard must reject the template.
func TestTemplateDifferential(t *testing.T) {
	shapes := genShapes(rand.New(rand.NewSource(7)), 50)
	var mu sync.Mutex
	rejections := 0
	for i, s := range shapes {
		i, s := i, s
		t.Run(fmt.Sprintf("shape%02d", i), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(1000 + i)))
			ctx := context.Background()

			// Capture at the first point.
			base := s.request(sweepRows(rng, s.inputs), diffRAM)
			cc, err := Compile(base)
			if err != nil {
				t.Fatalf("compile %q: %v", s.program, err)
			}
			coldBase, tmpl, err := cc.RunCapture(ctx)
			if err != nil {
				t.Fatalf("capture %q: %v", s.program, err)
			}
			if tmpl == nil {
				t.Fatalf("no template for capturable request %q", s.program)
			}
			// The captured plan must equal a plain cold run of the same point.
			rerun, err := Compile(base)
			if err != nil {
				t.Fatal(err)
			}
			coldAgain, err := rerun.Run(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(Encode(coldBase), Encode(coldAgain)) {
				t.Fatalf("capture changed the synthesis result for %q", s.program)
			}

			// Sweep: instantiate vs cold at fresh cardinality points.
			for point := 0; point < 3; point++ {
				rows := sweepRows(rng, s.inputs)
				req := s.request(rows, diffRAM)
				ci, err := Compile(req)
				if err != nil {
					t.Fatal(err)
				}
				if ci.TemplateFingerprint != cc.TemplateFingerprint {
					t.Fatalf("template fingerprint changed with cardinalities %v", rows)
				}
				warm, err := ci.Instantiate(ctx, tmpl)
				if errors.Is(err, ErrTemplateStale) {
					// A beam's pruning may genuinely flip across regimes: the
					// guard must reject, and a full search must still serve
					// the request.
					if s.strategy != "beam" {
						t.Fatalf("guard rejected a cardinality-independent space (%q rows %v)", s.program, rows)
					}
					mu.Lock()
					rejections++
					mu.Unlock()
					cold2, err := Compile(req)
					if err != nil {
						t.Fatal(err)
					}
					if _, err := cold2.Run(ctx); err != nil {
						t.Fatalf("fallback full search failed: %v", err)
					}
					continue
				}
				if err != nil {
					t.Fatalf("instantiate %q rows %v: %v", s.program, rows, err)
				}
				cold, err := ci.Run(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(Encode(warm), Encode(cold)) {
					t.Errorf("template instantiation diverged from cold search\nprogram: %s\nrows: %v\nwarm: %s\ncold: %s",
						s.program, rows, Encode(warm), Encode(cold))
				}
			}

			// Constant perturbation: same shape, different RAM — the template
			// key matches but the hierarchy-constant guard must fire.
			if i%10 == 0 {
				req := s.request(sweepRows(rng, s.inputs), 2*diffRAM)
				ci, err := Compile(req)
				if err != nil {
					t.Fatal(err)
				}
				if ci.TemplateFingerprint != cc.TemplateFingerprint {
					t.Fatalf("template fingerprint depends on a hierarchy constant")
				}
				if _, err := ci.Instantiate(ctx, tmpl); !errors.Is(err, ErrTemplateStale) {
					t.Fatalf("want ErrTemplateStale for changed RAM, got %v", err)
				}
				mu.Lock()
				rejections++
				mu.Unlock()
			}
		})
	}
	t.Cleanup(func() {
		if rejections == 0 {
			t.Errorf("no guard rejection occurred in the whole run; the sweep must include at least one")
		}
	})
}

// TestTemplateRegimeCrossingGuard pins a regime crossing where the beam
// guard must reject: a narrow beam ranks derivation prefixes by screening
// cost, and swapping which relation is the small one flips the pruning
// order, so a template captured on one side of the crossing cannot prove
// the other side's search space. (The exact case was found by sweeping; the
// assertion is that the guard fires — serving the captured space here could
// serve a plan a cold search would not produce.)
func TestTemplateRegimeCrossingGuard(t *testing.T) {
	shape := diffShape{
		program:  "for (x <- R) for (y <- S) if x.1 == y.1 then [<x, y>] else []",
		inputs:   []string{"R", "S"},
		hier:     "hdd-ram",
		strategy: "beam",
		beam:     2,
		depth:    4,
		space:    300,
	}
	ctx := context.Background()
	capPoint := map[string]int64{"R": 1 << 22, "S": 1 << 8}
	flip := map[string]int64{"R": 1 << 8, "S": 1 << 22}

	cc, err := Compile(shape.request(capPoint, diffRAM))
	if err != nil {
		t.Fatal(err)
	}
	_, tmpl, err := cc.RunCapture(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if tmpl == nil {
		t.Fatal("no template captured")
	}

	ci, err := Compile(shape.request(flip, diffRAM))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ci.Instantiate(ctx, tmpl); !errors.Is(err, ErrTemplateStale) {
		t.Fatalf("want ErrTemplateStale across the R/S size flip, got %v", err)
	}
	// Guard fired: the fallback full search must serve the request.
	if _, err := ci.Run(ctx); err != nil {
		t.Fatalf("fallback full search failed: %v", err)
	}
}

// TestTemplateFingerprintInvariance is the template complement of the full
// fingerprint's workers-invariance test: worker counts and input rows are
// free template slots, while anything that can change the search space is
// not.
func TestTemplateFingerprintInvariance(t *testing.T) {
	base := joinReq()
	tfp := func(t *testing.T, r Request) string {
		t.Helper()
		c, err := Compile(r)
		if err != nil {
			t.Fatal(err)
		}
		return c.TemplateFingerprint
	}
	ref := tfp(t, base)

	invariant := map[string]func(r *Request){
		"workers":     func(r *Request) { r.Workers = 7 },
		"rows":        func(r *Request) { in := r.Inputs["R"]; in.Rows = 12345; r.Inputs["R"] = in },
		"ram":         func(r *Request) { r.RAM = 16 << 20 },
		"description": func(r *Request) { r.Description = "other" },
		"whitespace":  func(r *Request) { r.Program = "  " + r.Program + "\n" },
		"binders": func(r *Request) {
			r.Program = `for (a <- R) for (b <- S) if a.1 == b.1 then [<a, b>] else []`
		},
	}
	for name, mut := range invariant {
		r := joinReq()
		mut(&r)
		if got := tfp(t, r); got != ref {
			t.Errorf("template fingerprint must be invariant under %s", name)
		}
	}

	sensitive := map[string]func(r *Request){
		"program":  func(r *Request) { r.Program = `for (x <- R) [x]` },
		"hier":     func(r *Request) { r.Hier = "hdd-ram-cache" },
		"node":     func(r *Request) { in := r.Inputs["R"]; in.Node = "ram"; r.Inputs["R"] = in },
		"arity":    func(r *Request) { in := r.Inputs["R"]; in.Arity = 1; r.Inputs["R"] = in },
		"output":   func(r *Request) { r.Output = "hdd" },
		"strategy": func(r *Request) { r.Strategy = "beam"; r.Beam = 8 },
		"depth":    func(r *Request) { r.Depth = 5 },
		"space":    func(r *Request) { r.Space = 700 },
		"commut":   func(r *Request) { f := false; r.Commutative = &f },
	}
	for name, mut := range sensitive {
		r := joinReq()
		mut(&r)
		if got := tfp(t, r); got == ref {
			t.Errorf("template fingerprint must be sensitive to %s", name)
		}
	}
}

// TestTemplatePersistenceRoundTrip proves a template survives the JSON
// round trip with its behavior intact: the restored template (whose cost
// formulas are rebuilt lazily) instantiates to the same bytes as the
// original, and still matches a cold search.
func TestTemplatePersistenceRoundTrip(t *testing.T) {
	ctx := context.Background()
	base := joinReq()
	cc, err := Compile(base)
	if err != nil {
		t.Fatal(err)
	}
	_, tmpl, err := cc.RunCapture(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if tmpl == nil {
		t.Fatal("no template captured")
	}
	data, err := json.Marshal(tmpl)
	if err != nil {
		t.Fatal(err)
	}
	var back Template
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint != tmpl.Fingerprint || back.SpecText != tmpl.SpecText || back.HierSig != tmpl.HierSig {
		t.Fatalf("round trip changed template identity")
	}

	fresh := joinReq()
	in := fresh.Inputs["R"]
	in.Rows = 1 << 21
	fresh.Inputs["R"] = in
	ci, err := Compile(fresh)
	if err != nil {
		t.Fatal(err)
	}
	warmOrig, err := ci.Instantiate(ctx, tmpl)
	if err != nil {
		t.Fatal(err)
	}
	warmBack, err := ci.Instantiate(ctx, &back)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := ci.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(Encode(warmBack), Encode(warmOrig)) {
		t.Fatalf("restored template diverged from the original")
	}
	if !bytes.Equal(Encode(warmBack), Encode(cold)) {
		t.Fatalf("restored template diverged from cold search")
	}
}

// TestTemplateConcurrentInstantiate exercises one template from many
// goroutines at different cardinalities (the daemon's steady state); run
// with -race.
func TestTemplateConcurrentInstantiate(t *testing.T) {
	ctx := context.Background()
	cc, err := Compile(joinReq())
	if err != nil {
		t.Fatal(err)
	}
	_, tmpl, err := cc.RunCapture(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if tmpl == nil {
		t.Fatal("no template captured")
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := joinReq()
			in := req.Inputs["R"]
			in.Rows = int64(1) << (10 + g)
			req.Inputs["R"] = in
			ci, err := Compile(req)
			if err != nil {
				errs[g] = err
				return
			}
			warm, err := ci.Instantiate(ctx, tmpl)
			if err != nil {
				errs[g] = err
				return
			}
			cold, err := ci.Run(ctx)
			if err != nil {
				errs[g] = err
				return
			}
			if !bytes.Equal(Encode(warm), Encode(cold)) {
				errs[g] = fmt.Errorf("goroutine %d: warm != cold", g)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
