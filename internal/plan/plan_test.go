package plan

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

const joinSrc = `for (x <- R) for (y <- S) if x.1 == y.1 then [<x, y>] else []`

func joinReq() Request {
	return Request{
		Program: joinSrc,
		Hier:    "hdd-ram",
		RAM:     8 << 20,
		Inputs: map[string]Input{
			"R": {Node: "hdd", Rows: 1 << 20},
			"S": {Node: "hdd", Rows: 1 << 16},
		},
		Depth: 4,
		Space: 500,
	}
}

func fp(t *testing.T, r Request) string {
	t.Helper()
	c, err := Compile(r)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return c.Fingerprint
}

func TestFingerprintStableUnderWhitespaceAndComments(t *testing.T) {
	base := fp(t, joinReq())
	r := joinReq()
	r.Program = "-- the naive join\nfor (x <- R)\n  for (y <- S)\n    if x.1 == y.1 then [<x, y>] else []"
	if got := fp(t, r); got != base {
		t.Fatalf("whitespace/comments changed the fingerprint:\n%s\n%s", base, got)
	}
}

func TestFingerprintStableUnderAlphaRenaming(t *testing.T) {
	base := fp(t, joinReq())
	r := joinReq()
	r.Program = `for (outer <- R) for (inner <- S) if outer.1 == inner.1 then [<outer, inner>] else []`
	if got := fp(t, r); got != base {
		t.Fatalf("alpha-renaming changed the fingerprint:\n%s\n%s", base, got)
	}
}

func TestFingerprintIgnoresWorkers(t *testing.T) {
	base := fp(t, joinReq())
	r := joinReq()
	r.Workers = 7
	if got := fp(t, r); got != base {
		t.Fatal("worker count changed the fingerprint; it must not affect the plan")
	}
}

func TestWorkersClamped(t *testing.T) {
	r := joinReq()
	r.Workers = 1 << 30 // a shared daemon must not spawn per-request giant pools
	c, err := Compile(r)
	if err != nil {
		t.Fatal(err)
	}
	if c.Synth.Workers != MaxWorkers {
		t.Fatalf("Workers = %d, want clamped to %d", c.Synth.Workers, MaxWorkers)
	}
	r = joinReq()
	r.Workers = -5
	if c, err = Compile(r); err != nil || c.Synth.Workers != 0 {
		t.Fatalf("negative Workers: got %d, %v; want 0", c.Synth.Workers, err)
	}
}

func TestFingerprintStableUnderExplicitDefaults(t *testing.T) {
	r := joinReq()
	r.Strategy = "exhaustive"
	tr := true
	r.Commutative = &tr
	if got, base := fp(t, r), fp(t, joinReq()); got != base {
		t.Fatal("spelling out the defaults changed the fingerprint")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := fp(t, joinReq())
	mutations := map[string]func(*Request){
		"rows":        func(r *Request) { r.Inputs["R"] = Input{Node: "hdd", Rows: 999} },
		"arity":       func(r *Request) { r.Inputs["R"] = Input{Node: "hdd", Rows: 1 << 20, Arity: 1} },
		"depth":       func(r *Request) { r.Depth = 5 },
		"space":       func(r *Request) { r.Space = 501 },
		"strategy":    func(r *Request) { r.Strategy = "beam" },
		"ram":         func(r *Request) { r.RAM = 16 << 20 },
		"hier":        func(r *Request) { r.Hier = "hdd-ram-cache" },
		"output":      func(r *Request) { r.Output = "hdd" },
		"commutative": func(r *Request) { f := false; r.Commutative = &f },
		"program":     func(r *Request) { r.Program = `for (x <- R) for (y <- S) if x.1 == y.2 then [<x, y>] else []` },
	}
	for name, mutate := range mutations {
		r := joinReq()
		mutate(&r)
		if got := fp(t, r); got == base {
			t.Errorf("mutation %q did not change the fingerprint", name)
		}
	}
}

func TestCompileRejectsBadRequests(t *testing.T) {
	cases := map[string]func(*Request){
		"bad program":       func(r *Request) { r.Program = "for (x <-" },
		"no inputs":         func(r *Request) { r.Inputs = nil },
		"unknown node":      func(r *Request) { r.Inputs["R"] = Input{Node: "tape", Rows: 10} },
		"zero rows":         func(r *Request) { r.Inputs["R"] = Input{Node: "hdd", Rows: 0} },
		"bad arity":         func(r *Request) { r.Inputs["R"] = Input{Node: "hdd", Rows: 10, Arity: 3} },
		"unknown hierarchy": func(r *Request) { r.Hier = "quantum" },
		"unknown strategy":  func(r *Request) { r.Strategy = "dfs" },
		"beam too wide":     func(r *Request) { r.Strategy = "beam"; r.Beam = MaxBeam + 1 },
		"depth too deep":    func(r *Request) { r.Depth = MaxDepth + 1 },
		"space too large":   func(r *Request) { r.Space = MaxSpace + 1 },
		"unknown output":    func(r *Request) { r.Output = "tape" },
		"free variable":     func(r *Request) { r.Program = `for (x <- R) for (y <- T) [<x, y>]` },
		"bad inline hier":   func(r *Request) { r.Hierarchy = []byte(`{"name":"x"}`) },
	}
	for name, mutate := range cases {
		r := joinReq()
		mutate(&r)
		if _, err := Compile(r); err == nil {
			t.Errorf("%s: Compile accepted an invalid request", name)
		}
	}
}

func TestExecuteDeterministicAcrossWorkerCounts(t *testing.T) {
	a, err := Execute(context.Background(), joinReq())
	if err != nil {
		t.Fatal(err)
	}
	r := joinReq()
	r.Workers = 1
	b, err := Execute(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(Encode(a), Encode(b)) {
		t.Fatalf("plans differ across worker counts:\n%s\n---\n%s", Encode(a), Encode(b))
	}
	if a.Speedup <= 1 {
		t.Fatalf("expected the synthesized join to beat the spec, speedup=%v", a.Speedup)
	}
	if !strings.Contains(a.C, "ocas_query") {
		t.Fatalf("expected generated C in the plan, got %q", a.C)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p, err := Execute(context.Background(), joinReq())
	if err != nil {
		t.Fatal(err)
	}
	q, err := Decode(Encode(p))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(Encode(p), Encode(q)) {
		t.Fatal("Encode(Decode(Encode(p))) != Encode(p)")
	}
}
