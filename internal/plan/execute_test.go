package plan

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"ocas/internal/interp"
	"ocas/internal/ocal"
)

// scaleRequest shrinks a corpus request so synthesis and execution stay
// test-sized while the size *ratios* (relation vs RAM) that drive plan
// shape survive.
func scaleRequest(req *Request, maxRows int64) {
	var biggest int64
	for _, in := range req.Inputs {
		if in.Rows > biggest {
			biggest = in.Rows
		}
	}
	f := int64(1)
	for biggest/f > maxRows {
		f *= 2
	}
	if f == 1 {
		return
	}
	for name, in := range req.Inputs {
		in.Rows /= f
		if in.Rows < 64 {
			in.Rows = 64
		}
		req.Inputs[name] = in
	}
	if req.RAM > 0 {
		req.RAM /= f
		if req.RAM < 4096 {
			req.RAM = 4096
		}
	}
}

// valuesFor converts generated input rows into interpreter values.
func valuesFor(t *testing.T, c *Compiled, opt ExecOptions) map[string]ocal.Value {
	t.Helper()
	vals := map[string]ocal.Value{}
	for i, in := range c.Task.Spec.Inputs {
		rows, err := inputData(in, c.Task, opt, i)
		if err != nil {
			t.Fatal(err)
		}
		n := len(rows) / in.Arity
		l := make(ocal.List, n)
		for r := 0; r < n; r++ {
			if in.Arity == 1 {
				l[r] = ocal.Int(int64(rows[r]))
				continue
			}
			tup := make(ocal.Tuple, in.Arity)
			for j := 0; j < in.Arity; j++ {
				tup[j] = ocal.Int(int64(rows[r*in.Arity+j]))
			}
			l[r] = tup
		}
		vals[in.Name] = l
	}
	return vals
}

// flatten converts one interpreter output value into a flat physical row.
func flatten(t *testing.T, v ocal.Value) []int32 {
	t.Helper()
	switch x := v.(type) {
	case ocal.Int:
		return []int32{int32(x)}
	case ocal.Tuple:
		var out []int32
		for _, e := range x {
			out = append(out, flatten(t, e)...)
		}
		return out
	}
	t.Fatalf("cannot flatten %T into a row", v)
	return nil
}

// TestExamplesDifferential is the end-to-end differential suite of the
// executor: every examples/ corpus request is synthesized (at test scale)
// and its winning program executed through the compositional lowerer at
// batch sizes {1, 7, 64} under a buffer budget smaller than the largest
// input, comparing the output bag against the reference interpreter run of
// the *specification* on identical inputs.
func TestExamplesDifferential(t *testing.T) {
	dirs, err := filepath.Glob("../../examples/*/request.json")
	if err != nil || len(dirs) == 0 {
		t.Fatalf("no example requests found: %v", err)
	}
	spilled := false
	for _, reqPath := range dirs {
		name := filepath.Base(filepath.Dir(reqPath))
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(reqPath)
			if err != nil {
				t.Fatal(err)
			}
			var req Request
			if err := json.Unmarshal(data, &req); err != nil {
				t.Fatal(err)
			}
			scaleRequest(&req, 2048)
			c, err := Compile(req)
			if err != nil {
				t.Fatal(err)
			}
			p, err := c.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}

			opt := ExecOptions{Seed: 42}
			want, err := interp.Eval(c.Prog, valuesFor(t, c, opt), nil)
			if err != nil {
				t.Fatalf("interp on spec: %v", err)
			}
			wl, ok := want.(ocal.List)
			if !ok {
				t.Fatalf("spec evaluated to %T, want a list", want)
			}
			wantRows := make([][]int32, len(wl))
			for i, v := range wl {
				wantRows[i] = flatten(t, v)
			}
			wantDigest := digestRows(wantRows)

			// Budget below the largest input: blocks shrink and scratch
			// traffic spills for plans that re-read intermediates.
			var biggest int64
			for _, in := range c.Task.Spec.Inputs {
				b := c.Task.InputRows[in.Name] * int64(in.Arity) * 4
				if b > biggest {
					biggest = b
				}
			}
			pool := biggest / 2
			if pool < 512 {
				pool = 512
			}
			for _, batch := range []int64{1, 7, 64} {
				opt := ExecOptions{Seed: 42, BatchRows: batch, PoolBytes: pool}
				rep, err := ExecutePlan(context.Background(), c, p, opt)
				if err != nil {
					t.Fatalf("execute (batch %d): %v", batch, err)
				}
				if rep.OutRows != int64(len(wantRows)) {
					t.Fatalf("batch %d: %d output rows, interpreter says %d\nprogram: %s",
						batch, rep.OutRows, len(wantRows), p.Program)
				}
				if rep.OutDigest != wantDigest {
					t.Fatalf("batch %d: output bag differs from the interpreter\nprogram: %s",
						batch, p.Program)
				}
				if rep.Pool.Budget != pool {
					t.Errorf("pool budget %d not enforced (got %d)", pool, rep.Pool.Budget)
				}
				if rep.Pool.Spills > 0 {
					spilled = true
				}
				if rep.VirtualSeconds <= 0 {
					t.Errorf("batch %d: no virtual time charged", batch)
				}
			}
		})
	}
	if !spilled {
		// At test scale the synthesizer may legitimately pick non-spilling
		// plans for every corpus request; TestExecuteGraceSpills pins the
		// spilling path down explicitly.
		t.Log("note: no corpus plan spilled at this scale")
	}
}

// TestExecuteGraceSpills executes a GRACE hash join under a buffer budget
// far below the inputs: the partitions must go through scratch spill
// files, and the output must stay bag-equal to the interpreter.
func TestExecuteGraceSpills(t *testing.T) {
	req := Request{
		Program: "flatMap(\\<p1, p2> -> for (xB [k1] <- p1) for (yB [k2] <- p2) " +
			"for (x <- xB) for (y <- yB) if x.1 == y.1 then [<x, y>] else [])" +
			"(zip[2](partition[s](R), partition[s](S)))",
		Inputs: map[string]Input{
			"R": {Node: "hdd", Rows: 1024},
			"S": {Node: "hdd", Rows: 2048},
		},
		RAM:   64 << 10,
		Depth: 2, Space: 200,
	}
	c, err := Compile(req)
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	opt := ExecOptions{Seed: 3, PoolBytes: 2048} // far below the 8/16 KiB inputs
	want, err := interp.Eval(c.Prog, valuesFor(t, c, opt), p.Params)
	if err != nil {
		t.Fatal(err)
	}
	wl := want.(ocal.List)
	wantRows := make([][]int32, len(wl))
	for i, v := range wl {
		wantRows[i] = flatten(t, v)
	}
	rep, err := ExecutePlan(context.Background(), c, p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OutDigest != digestRows(wantRows) {
		t.Fatalf("grace join bag differs from interpreter (%d vs %d rows)", rep.OutRows, len(wantRows))
	}
	if rep.Pool.Spills == 0 {
		t.Error("grace partitions must spill to scratch")
	}
	if rep.Pool.PeakBytes > 2048 {
		t.Errorf("pool peak %d exceeds the %d budget", rep.Pool.PeakBytes, 2048)
	}
}

// TestExecutePlanExplicitInputs runs a cached plan against request-supplied
// rows and checks determinism of the digest across batch sizes.
func TestExecutePlanExplicitInputs(t *testing.T) {
	req := Request{
		Program: "for (x <- R) for (y <- S) if x.1 == y.1 then [<x, y>] else []",
		Inputs: map[string]Input{
			"R": {Node: "hdd", Rows: 1024},
			"S": {Node: "hdd", Rows: 1024},
		},
		Depth: 4, Space: 500,
	}
	c, err := Compile(req)
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	opt := ExecOptions{Inputs: map[string][][]int64{
		"R": {{1, 10}, {2, 20}, {3, 30}},
		"S": {{1, 100}, {3, 300}, {1, 101}},
	}}
	rep1, err := ExecutePlan(context.Background(), c, p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.OutRows != 3 {
		t.Fatalf("join of supplied rows produced %d rows, want 3", rep1.OutRows)
	}
	opt.BatchRows = 1
	rep2, err := ExecutePlan(context.Background(), c, p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.OutDigest != rep2.OutDigest {
		t.Error("digest must be independent of the batch size")
	}
	if rep1.Fingerprint != c.Fingerprint {
		t.Error("report must carry the plan fingerprint")
	}
	if len(rep1.Devices) == 0 || rep1.Devices["hdd"].BytesRead == 0 {
		t.Errorf("device ledger missing: %+v", rep1.Devices)
	}

	// Malformed rows are rejected.
	bad := ExecOptions{Inputs: map[string][][]int64{"R": {{1}}}}
	if _, err := ExecutePlan(context.Background(), c, p, bad); err == nil {
		t.Error("arity-mismatched rows must be rejected")
	}
}

// TestExecutePlanCancellation: a cancelled context must stop execution
// even when all the work happens inside an operator's Open phase (a fold
// root never yields a batch to Program.Run's per-batch check).
func TestExecutePlanCancellation(t *testing.T) {
	req := Request{
		Program: "foldL(0, \\<a, x> -> (a + x.2))(R)",
		Inputs:  map[string]Input{"R": {Node: "hdd", Rows: 1 << 18}},
		Depth:   3, Space: 200,
	}
	c, err := Compile(req)
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = ExecutePlan(ctx, c, p, ExecOptions{Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled execution returned %v, want context.Canceled", err)
	}
}

// TestExecutePlanConcurrent executes one compiled plan from many goroutines
// (the service does this under load); -race guards shared state.
func TestExecutePlanConcurrent(t *testing.T) {
	req := Request{
		Program: "foldL(0, \\<a, x> -> (a + x.2))(R)",
		Inputs:  map[string]Input{"R": {Node: "hdd", Rows: 512}},
		Depth:   3, Space: 200,
	}
	c, err := Compile(req)
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	digests := make([]string, 8)
	for i := range digests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := ExecutePlan(context.Background(), c, p, ExecOptions{Seed: 9, BatchRows: int64(i%3)*31 + 1})
			if err != nil {
				t.Error(err)
				return
			}
			digests[i] = rep.OutDigest
		}(i)
	}
	wg.Wait()
	sort.Strings(digests)
	if digests[0] != digests[len(digests)-1] {
		t.Errorf("concurrent executions disagree: %v", digests)
	}
}
