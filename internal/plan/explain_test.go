package plan

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// explainJSON marshals a normalized (wall-time-zeroed) explain tree; the
// determinism contract is byte-identity of this form.
func explainJSON(t *testing.T, op *ExplainOp) string {
	t.Helper()
	NormalizeExplain(op)
	data, err := json.Marshal(op)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestExplainDeterministicAcrossWorkers is the EXPLAIN ANALYZE determinism
// contract: for every examples/ corpus request, the explain tree — rows,
// batches, simulated seconds, event counts, estimates and drift ratios —
// must be byte-identical at exec workers {1, 4} once wall time (the one
// real-time field) is zeroed. It also checks that instrumentation does not
// perturb the execution itself: digest, ledgers and clock match an
// uninstrumented run.
func TestExplainDeterministicAcrossWorkers(t *testing.T) {
	dirs, err := filepath.Glob("../../examples/*/request.json")
	if err != nil || len(dirs) == 0 {
		t.Fatalf("no example requests found: %v", err)
	}
	for _, reqPath := range dirs {
		name := filepath.Base(filepath.Dir(reqPath))
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(reqPath)
			if err != nil {
				t.Fatal(err)
			}
			var req Request
			if err := json.Unmarshal(data, &req); err != nil {
				t.Fatal(err)
			}
			scaleRequest(&req, 4096)
			c, err := Compile(req)
			if err != nil {
				t.Fatal(err)
			}
			p, err := c.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}

			plain, err := ExecutePlan(context.Background(), c, p, ExecOptions{Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			if plain.Explain != nil {
				t.Fatal("explain tree attached without ExecOptions.Explain")
			}

			var base string
			for _, workers := range []int{1, 4} {
				rep, err := ExecutePlan(context.Background(), c, p,
					ExecOptions{Seed: 3, ExecWorkers: workers, Explain: true})
				if err != nil {
					t.Fatalf("execute (workers %d): %v", workers, err)
				}
				if rep.Explain == nil {
					t.Fatalf("workers %d: no explain tree", workers)
				}
				if rep.OutDigest != plain.OutDigest || rep.OutRows != plain.OutRows {
					t.Errorf("workers %d: instrumented run changed the output: %s/%d vs %s/%d",
						workers, rep.OutDigest, rep.OutRows, plain.OutDigest, plain.OutRows)
				}
				for dev, led := range plain.Devices {
					if rep.Devices[dev] != led {
						t.Errorf("workers %d: instrumented run changed device %s: %+v vs %+v",
							workers, dev, rep.Devices[dev], led)
					}
				}
				if rep.Explain.Rows == 0 && rep.OutRows > 0 && rep.Result == "" {
					t.Errorf("workers %d: root operator recorded no rows (output had %d)", workers, rep.OutRows)
				}
				js := explainJSON(t, rep.Explain)
				if workers == 1 {
					base = js
					continue
				}
				if js != base {
					t.Errorf("workers %d: explain tree differs from single-worker:\n%s\nvs\n%s",
						workers, js, base)
				}
			}
		})
	}
}

// TestExplainEstimates: on a costable plan the root node must carry a
// nonzero estimate and a finite drift ratio, and rendering must mention
// both sides.
func TestExplainEstimates(t *testing.T) {
	req := Request{
		Program: "for (x <- R) for (y <- S) if x.1 == y.1 then [<x, y>] else []",
		Inputs: map[string]Input{
			"R": {Node: "hdd", Rows: 2048},
			"S": {Node: "hdd", Rows: 4096},
		},
		RAM:   64 << 10,
		Depth: 3, Space: 500,
	}
	c, err := Compile(req)
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ExecutePlan(context.Background(), c, p, ExecOptions{Seed: 1, Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	root := rep.Explain
	if root == nil {
		t.Fatal("no explain tree")
	}
	if !root.EstValid || root.EstSeconds <= 0 {
		t.Errorf("root estimate missing: %+v", root)
	}
	if root.SimSeconds <= 0 {
		t.Errorf("root simulated seconds not recorded: %+v", root)
	}
	if root.DriftSeconds <= 0 {
		t.Errorf("root drift not computed: est=%v act=%v drift=%v",
			root.EstSeconds, root.SimSeconds, root.DriftSeconds)
	}
	out := RenderExplain(root)
	if out == "" {
		t.Fatal("empty rendering")
	}
	for _, want := range []string{"rows=", "est=", "drift="} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering lacks %q:\n%s", want, out)
		}
	}
}

// TestExplainEstimatesSingleInputMerge pins the 1-tuple round trip: a
// single-input unfoldR winner (the streaming group-by) prints its tuple
// argument as a bare parenthesized list, and ExecutePlan re-parses the
// program before running it — the estimator must still cost the merged
// root, or every cached group-by/sort plan silently loses its estimates.
func TestExplainEstimatesSingleInputMerge(t *testing.T) {
	src, err := os.ReadFile("../../examples/groupby/query.ocal")
	if err != nil {
		t.Fatal(err)
	}
	commut := false
	req := Request{
		Program:     string(src),
		Inputs:      map[string]Input{"R": {Node: "hdd", Rows: 8192}},
		Output:      "hdd",
		Hier:        "hdd-ram",
		RAM:         8 << 20,
		Depth:       5,
		Space:       2000,
		Commutative: &commut,
	}
	c, err := Compile(req)
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ExecutePlan(context.Background(), c, p, ExecOptions{Seed: 1, Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	root := rep.Explain
	if root == nil {
		t.Fatal("no explain tree")
	}
	if root.Op != "unfold-merge" {
		t.Fatalf("expected an unfold-merge root, got %q", root.Op)
	}
	if !root.EstValid || root.EstSeconds <= 0 || root.DriftSeconds <= 0 {
		t.Errorf("re-parsed single-input merge lost its estimate: %+v", root)
	}
}
