package plan

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// TestExamplesWorkerSweep is the determinism contract of the morsel-driven
// executor at plan level: every examples/ corpus request is synthesized (at
// test scale) and its winning program executed at exec workers {1, 2, 4, 8}.
// The output digest, the output row count and the total per-device ledger
// charges must be identical at every worker count; the virtual clock may
// differ only by float-summation rounding. Run under -race this doubles as
// the concurrency check of the whole lowered-operator repertoire.
func TestExamplesWorkerSweep(t *testing.T) {
	dirs, err := filepath.Glob("../../examples/*/request.json")
	if err != nil || len(dirs) == 0 {
		t.Fatalf("no example requests found: %v", err)
	}
	for _, reqPath := range dirs {
		name := filepath.Base(filepath.Dir(reqPath))
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(reqPath)
			if err != nil {
				t.Fatal(err)
			}
			var req Request
			if err := json.Unmarshal(data, &req); err != nil {
				t.Fatal(err)
			}
			scaleRequest(&req, 4096)
			c, err := Compile(req)
			if err != nil {
				t.Fatal(err)
			}
			p, err := c.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			var base *ExecReport
			for _, workers := range []int{1, 2, 4, 8} {
				opt := ExecOptions{Seed: 11, ExecWorkers: workers}
				rep, err := ExecutePlan(context.Background(), c, p, opt)
				if err != nil {
					t.Fatalf("execute (workers %d): %v", workers, err)
				}
				if workers == 1 {
					base = rep
					continue
				}
				if rep.OutDigest != base.OutDigest {
					t.Errorf("workers %d: digest %s differs from single-worker %s\nprogram: %s",
						workers, rep.OutDigest, base.OutDigest, p.Program)
				}
				if rep.OutRows != base.OutRows {
					t.Errorf("workers %d: %d rows, single-worker wrote %d", workers, rep.OutRows, base.OutRows)
				}
				for dev, led := range base.Devices {
					if rep.Devices[dev] != led {
						t.Errorf("workers %d: device %s ledger %+v differs from single-worker %+v",
							workers, dev, rep.Devices[dev], led)
					}
				}
				if diff := math.Abs(rep.VirtualSeconds - base.VirtualSeconds); diff > 1e-9*math.Max(1, base.VirtualSeconds) {
					t.Errorf("workers %d: clock %v differs from single-worker %v",
						workers, rep.VirtualSeconds, base.VirtualSeconds)
				}
				if rep.ExecWorkers != workers {
					t.Errorf("report says %d workers, ran %d", rep.ExecWorkers, workers)
				}
				if len(rep.Workers) != workers {
					t.Errorf("workers %d: %d lane ledgers in report", workers, len(rep.Workers))
				}
			}
		})
	}
}

// TestExecuteWorkersDeterministicReport: two runs at the same multi-worker
// count must produce identical reports for everything the contract covers
// (the service's /execute responses are compared this way in CI).
func TestExecuteWorkersDeterministicReport(t *testing.T) {
	req := Request{
		Program: "flatMap(\\<p1, p2> -> for (xB [k1] <- p1) for (yB [k2] <- p2) " +
			"for (x <- xB) for (y <- yB) if x.1 == y.1 then [<x, y>] else [])" +
			"(zip[2](partition[s](R), partition[s](S)))",
		Inputs: map[string]Input{
			"R": {Node: "hdd", Rows: 4096},
			"S": {Node: "hdd", Rows: 8192},
		},
		RAM:   256 << 10,
		Depth: 2, Space: 200,
	}
	c, err := Compile(req)
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	opt := ExecOptions{Seed: 5, ExecWorkers: 4}
	r1, err := ExecutePlan(context.Background(), c, p, opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ExecutePlan(context.Background(), c, p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r1.OutDigest != r2.OutDigest || r1.OutRows != r2.OutRows {
		t.Errorf("same-config runs disagree on output: %s/%d vs %s/%d",
			r1.OutDigest, r1.OutRows, r2.OutDigest, r2.OutRows)
	}
	for dev := range r1.Devices {
		if r1.Devices[dev] != r2.Devices[dev] {
			t.Errorf("same-config runs disagree on device %s: %+v vs %+v",
				dev, r1.Devices[dev], r2.Devices[dev])
		}
	}
	for i := range r1.Workers {
		if r1.Workers[i] != r2.Workers[i] {
			t.Errorf("same-config runs disagree on lane %d: %+v vs %+v",
				i, r1.Workers[i], r2.Workers[i])
		}
	}
}
