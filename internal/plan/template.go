// Plan templates: the synthesize-once/re-tune-many split of the cache.
//
// A Template is what one full synthesis leaves behind for every future
// request of the same *shape*: the explored search space with its symbolic
// cost formulas (input cardinalities are free variables there) and the
// beam's pruning trace. The template fingerprint hashes the alpha-normalized
// program, the hierarchy shape (node names, kinds and topology — sizes and
// edge costs excluded), the placement (input→node, arities — rows excluded)
// and the search knobs; requests differing only in cardinalities or device
// constants share one template.
//
// Instantiate binds a request's concrete sizes and re-runs only the
// cardinality-dependent phases (heuristic screening + parameter
// optimization) over the captured space, yielding a plan byte-identical to
// a cold full search. Three guards reject a template with ErrTemplateStale,
// sending the request down the full-search path instead:
//
//   - hierarchy constants: the cost formulas bake in device sizes and
//     transfer costs, so a template only serves requests whose full
//     hierarchy matches the capturing one (same shape, different constants
//     re-synthesizes and replaces the template);
//   - spec text: rewrites name fresh binders deterministically from the
//     request's own source, so a template only replays for the identical
//     concrete program text (alpha-equivalent spellings share the template
//     key but not the plan bytes);
//   - beam trace: a beam's search space depends on cardinality-based
//     pruning; the recorded trace is re-verified at the new sizes and any
//     divergence — a different derivation could win — falls back.
package plan

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"ocas/internal/core"
	"ocas/internal/memory"
	"ocas/internal/ocal"
	"ocas/internal/rules"
)

// ErrTemplateStale reports that a template cannot serve this request: a
// full search could produce a different plan. Callers fall back to full
// synthesis (and typically replace the template with the fresh capture).
var ErrTemplateStale = errors.New("plan: template is stale for this request")

// Template is a reusable synthesis for one request shape.
type Template struct {
	// Fingerprint is the template fingerprint (Compiled.TemplateFingerprint).
	Fingerprint string
	// SpecText is the canonical printing of the captured specification;
	// instantiation requires the requesting program to print identically so
	// that replayed plan bytes (binder names included) match a cold run.
	SpecText string
	// HierSig is the canonical hierarchy JSON of the capturing request,
	// constants included.
	HierSig string

	cp     *core.Capture
	replay *core.Replay
}

// RunCapture is Run, additionally returning the run's template. The template
// is nil (with a valid plan) when the run is not capturable — custom search
// strategies or spaces beyond core.CaptureLimit.
func (c *Compiled) RunCapture(ctx context.Context) (*Plan, *Template, error) {
	res, cp, err := c.Synth.SynthesizeCapture(ctx, c.Task)
	if err != nil {
		return nil, nil, err
	}
	p, err := c.finishPlan(res)
	if err != nil {
		return nil, nil, err
	}
	if cp == nil {
		return p, nil, nil
	}
	hj, err := json.Marshal(c.H)
	if err != nil {
		return nil, nil, fmt.Errorf("template hierarchy signature: %w", err)
	}
	t := &Template{
		Fingerprint: c.TemplateFingerprint,
		SpecText:    ocal.String(c.Prog),
		HierSig:     string(hj),
		cp:          cp,
		replay:      core.NewReplay(cp),
	}
	return p, t, nil
}

// Instantiate binds the request's cardinalities into the template and
// re-optimizes, producing the plan a cold full search would produce — byte
// for byte. ErrTemplateStale means the guards could not prove that, and the
// caller must synthesize from scratch. Safe for concurrent use.
func (c *Compiled) Instantiate(ctx context.Context, t *Template) (*Plan, error) {
	if t.Fingerprint != c.TemplateFingerprint {
		return nil, ErrTemplateStale
	}
	hj, err := json.Marshal(c.H)
	if err != nil {
		return nil, fmt.Errorf("template hierarchy signature: %w", err)
	}
	if string(hj) != t.HierSig {
		return nil, ErrTemplateStale
	}
	if ocal.String(c.Prog) != t.SpecText {
		return nil, ErrTemplateStale
	}
	res, err := t.replay.Instantiate(ctx, c.Synth, c.Task)
	if errors.Is(err, core.ErrStaleCapture) {
		return nil, ErrTemplateStale
	}
	if err != nil {
		return nil, err
	}
	return c.finishPlan(res)
}

// templateFingerprint is the shape-level content address: the plan
// fingerprint with everything cardinality- and constant-shaped left out.
// Input rows and the hierarchy's sizes/costs are free template slots;
// binder names, whitespace and worker counts never mattered.
func templateFingerprint(req Request, prog ocal.Expr, h *memory.Hierarchy, keys *rules.Keyer) (string, error) {
	shape, err := hierShape(h)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("ocas-template-v1\n")
	fmt.Fprintf(&b, "prog %s\n", keys.AlphaKey(prog))
	fmt.Fprintf(&b, "hier %s\n", shape)
	for _, name := range sortedInputNames(req.Inputs) {
		in := req.Inputs[name]
		fmt.Fprintf(&b, "in %s=%s:%d\n", name, in.Node, in.Arity)
	}
	fmt.Fprintf(&b, "out %s\nintermediate %s\ncommutative %v\n",
		req.Output, req.Intermediate, *req.Commutative)
	fmt.Fprintf(&b, "strategy %s:%d\ndepth %d\nspace %d\n",
		req.Strategy, req.Beam, req.Depth, req.Space)
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:]), nil
}

// shapeNode is the constant-free skeleton of a hierarchy node.
type shapeNode struct {
	Name     string      `json:"name"`
	Kind     memory.Kind `json:"kind"`
	Children []shapeNode `json:"children,omitempty"`
}

// hierShape renders the hierarchy's topology — names, kinds, parent/child
// structure — without sizes, page sizes or transfer costs.
func hierShape(h *memory.Hierarchy) (string, error) {
	full, err := json.Marshal(h)
	if err != nil {
		return "", fmt.Errorf("template hierarchy shape: %w", err)
	}
	var root shapeNode
	if err := json.Unmarshal(full, &root); err != nil {
		return "", fmt.Errorf("template hierarchy shape: %w", err)
	}
	out, err := json.Marshal(root)
	if err != nil {
		return "", fmt.Errorf("template hierarchy shape: %w", err)
	}
	return string(out), nil
}

// templateJSON is the persisted form of a Template: the search space is
// serialized through the faithful OCAL codec; the per-member cost formulas
// are not stored — they are a deterministic function of the (guarded)
// hierarchy and placement and are rebuilt on first instantiation.
// HierSig is a JSON string, not a nested raw message: re-indenting
// serializers (MarshalIndent) rewrite nested raw JSON, and the guard
// compares signatures byte-exactly.
type templateJSON struct {
	Fingerprint string             `json:"fingerprint"`
	HierSig     string             `json:"hierSig"`
	Space       []templateMember   `json:"space"`
	Stats       rules.SearchStats  `json:"stats"`
	Trace       []rules.TraceLevel `json:"trace,omitempty"`
}

type templateMember struct {
	Expr  json.RawMessage `json:"expr"`
	Steps []string        `json:"steps,omitempty"`
}

// MarshalJSON serializes the template for cache persistence.
func (t *Template) MarshalJSON() ([]byte, error) {
	out := templateJSON{
		Fingerprint: t.Fingerprint,
		HierSig:     t.HierSig,
		Space:       make([]templateMember, len(t.cp.Space)),
		Stats:       t.cp.Stats,
		Trace:       t.cp.Trace,
	}
	for i, d := range t.cp.Space {
		e, err := ocal.MarshalExpr(d.Expr)
		if err != nil {
			return nil, fmt.Errorf("template space: %w", err)
		}
		out.Space[i] = templateMember{Expr: e, Steps: d.Steps}
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores a persisted template. The spec text is recomputed
// from the decoded space (the guards depend on it); cost formulas stay nil
// until the first instantiation rebuilds them.
func (t *Template) UnmarshalJSON(data []byte) error {
	var in templateJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("template: %w", err)
	}
	if in.Fingerprint == "" || len(in.Space) == 0 {
		return fmt.Errorf("template: missing fingerprint or space")
	}
	cp := &core.Capture{
		Space: make([]rules.Derivation, len(in.Space)),
		Stats: in.Stats,
		Trace: in.Trace,
	}
	for i, m := range in.Space {
		e, err := ocal.UnmarshalExpr(m.Expr)
		if err != nil {
			return fmt.Errorf("template space[%d]: %w", i, err)
		}
		cp.Space[i] = rules.Derivation{Expr: e, Steps: m.Steps}
	}
	t.Fingerprint = in.Fingerprint
	t.SpecText = ocal.String(cp.Space[0].Expr)
	t.HierSig = in.HierSig
	t.cp = cp
	t.replay = core.NewReplay(cp)
	return nil
}
