package plan

import (
	"context"
	"encoding/json"
	"os"
	"reflect"
	"testing"

	"ocas/internal/catalog"
)

// ingestGenerated loads exactly the rows the generators would produce for
// the compiled task into a fresh catalog table per input, in several
// batches so segment boundaries and the buffered tail are exercised.
func ingestGenerated(t *testing.T, cat *catalog.Catalog, c *Compiled, opt ExecOptions) map[string]string {
	t.Helper()
	tables := map[string]string{}
	for i, in := range c.Task.Spec.Inputs {
		rows, err := inputData(in, c.Task, opt, i)
		if err != nil {
			t.Fatal(err)
		}
		cols := make([]catalog.Column, in.Arity)
		for j := range cols {
			cols[j] = catalog.Column{Name: string(rune('a' + j)), Type: "int32"}
		}
		tname := "tbl_" + in.Name
		if err := cat.Create(tname, catalog.Schema{Columns: cols, Key: []int{0}}); err != nil {
			t.Fatal(err)
		}
		// Three uneven batches: generated rows are key-sorted, so the
		// stable ingest sort is the identity and order survives exactly.
		vals := len(rows)
		cut1 := (vals / 3 / in.Arity) * in.Arity
		cut2 := (2 * vals / 3 / in.Arity) * in.Arity
		for _, b := range [][]int32{rows[:cut1], rows[cut1:cut2], rows[cut2:]} {
			if _, err := cat.Append(tname, b); err != nil {
				t.Fatal(err)
			}
		}
		tables[in.Name] = tname
	}
	return tables
}

// TestDurableScanDifferential is the PR's core guarantee: scans resolved
// from durably ingested tables produce byte-identical digests, per-device
// ledgers and virtual clocks to generated-row runs at equal cardinalities,
// for every executor worker count.
func TestDurableScanDifferential(t *testing.T) {
	reqs := map[string]Request{
		"grace-join": {
			Program: "flatMap(\\<p1, p2> -> for (xB [k1] <- p1) for (yB [k2] <- p2) " +
				"for (x <- xB) for (y <- yB) if x.1 == y.1 then [<x, y>] else [])" +
				"(zip[2](partition[s](R), partition[s](S)))",
			Inputs: map[string]Input{
				"R": {Node: "hdd", Rows: 1024},
				"S": {Node: "hdd", Rows: 2048},
			},
			RAM:   64 << 10,
			Depth: 2, Space: 200,
		},
	}
	// The groupby corpus request adds an order-sensitive streaming fold.
	if data, err := os.ReadFile("../../examples/groupby/request.json"); err == nil {
		var req Request
		if err := json.Unmarshal(data, &req); err != nil {
			t.Fatal(err)
		}
		scaleRequest(&req, 2048)
		reqs["groupby"] = req
	}

	for name, req := range reqs {
		t.Run(name, func(t *testing.T) {
			c, err := Compile(req)
			if err != nil {
				t.Fatal(err)
			}
			p, err := c.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}

			base := ExecOptions{Seed: 42, PoolBytes: 16 << 10}
			// Flush threshold below the row counts: multiple segments per
			// table plus a buffered, not-yet-durable tail.
			cat, err := catalog.Open(t.TempDir(), catalog.Options{FlushRows: 257, ChunkRows: 64})
			if err != nil {
				t.Fatal(err)
			}
			defer cat.Close()
			tables := ingestGenerated(t, cat, c, base)

			want, err := ExecutePlan(context.Background(), c, p, base)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 4, 8} {
				opt := base
				opt.ExecWorkers = workers
				opt.Tables = tables
				opt.Cat = cat
				got, err := ExecutePlan(context.Background(), c, p, opt)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if got.OutDigest != want.OutDigest {
					t.Errorf("workers=%d: digest %s differs from generated run %s",
						workers, got.OutDigest, want.OutDigest)
				}
				if got.OutRows != want.OutRows {
					t.Errorf("workers=%d: %d output rows, generated run had %d",
						workers, got.OutRows, want.OutRows)
				}
				if got.VirtualSeconds != want.VirtualSeconds {
					t.Errorf("workers=%d: virtual clock %v differs from generated %v",
						workers, got.VirtualSeconds, want.VirtualSeconds)
				}
				if !reflect.DeepEqual(got.Devices, want.Devices) {
					t.Errorf("workers=%d: device ledgers differ\n got: %+v\nwant: %+v",
						workers, got.Devices, want.Devices)
				}
				if !reflect.DeepEqual(got.InputRows, want.InputRows) {
					t.Errorf("workers=%d: input rows %v want %v", workers, got.InputRows, want.InputRows)
				}
			}
		})
	}
}

// TestDurableScanAfterReopen pins durability end to end: ingest, close,
// reopen the catalog from disk, and the digest still matches the generated
// baseline.
func TestDurableScanAfterReopen(t *testing.T) {
	req := Request{
		Program: "foldL(0, \\<a, x> -> (a + x.2))(R)",
		Inputs:  map[string]Input{"R": {Node: "hdd", Rows: 1500, Arity: 2}},
		RAM:     32 << 10,
		Depth:   2, Space: 200,
	}
	c, err := Compile(req)
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	base := ExecOptions{Seed: 7}
	dir := t.TempDir()
	cat, err := catalog.Open(dir, catalog.Options{FlushRows: 100})
	if err != nil {
		t.Fatal(err)
	}
	tables := ingestGenerated(t, cat, c, base)
	if err := cat.Close(); err != nil {
		t.Fatal(err)
	}

	cat2, err := catalog.Open(dir, catalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cat2.Close()

	want, err := ExecutePlan(context.Background(), c, p, base)
	if err != nil {
		t.Fatal(err)
	}
	opt := base
	opt.Tables = tables
	opt.Cat = cat2
	got, err := ExecutePlan(context.Background(), c, p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got.OutDigest != want.OutDigest || got.Result != want.Result {
		t.Fatalf("reopened catalog scan differs: digest %s vs %s, result %q vs %q",
			got.OutDigest, want.OutDigest, got.Result, want.Result)
	}
	if got.VirtualSeconds != want.VirtualSeconds {
		t.Fatalf("virtual clock %v want %v", got.VirtualSeconds, want.VirtualSeconds)
	}
}

// TestTableBindingValidation covers the rejection paths.
func TestTableBindingValidation(t *testing.T) {
	req := Request{
		Program: "foldL(0, \\<a, x> -> (a + x))(R)",
		Inputs:  map[string]Input{"R": {Node: "hdd", Rows: 100, Arity: 1}},
		RAM:     32 << 10,
		Depth:   2, Space: 200,
	}
	c, err := Compile(req)
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cat, err := catalog.Open(t.TempDir(), catalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	if err := cat.Create("pairs", catalog.Schema{
		Columns: []catalog.Column{{Name: "k"}, {Name: "v"}},
	}); err != nil {
		t.Fatal(err)
	}

	cases := map[string]ExecOptions{
		"no catalog":      {Tables: map[string]string{"R": "pairs"}},
		"unknown input":   {Tables: map[string]string{"Z": "pairs"}, Cat: cat},
		"missing table":   {Tables: map[string]string{"R": "nope"}, Cat: cat},
		"arity mismatch":  {Tables: map[string]string{"R": "pairs"}, Cat: cat},
		"rows conflict":   {Tables: map[string]string{"R": "pairs"}, Cat: cat, Rows: map[string]int64{"R": 5}},
		"inputs conflict": {Tables: map[string]string{"R": "pairs"}, Cat: cat, Inputs: map[string][][]int64{"R": {{1}}}},
	}
	for name, opt := range cases {
		if _, err := ExecutePlan(context.Background(), c, p, opt); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
}
