// explain.go turns the executor's instrumented operator tree into the
// EXPLAIN ANALYZE report: each node pairs the operator's measured actuals
// (rows, simulated seconds, InitCom/UnitTr events, pool activity) with the
// cost model's estimate of the same subexpression — cost.Estimate evaluated
// at the plan's tuned parameters and the executed cardinalities — and the
// est/act drift ratio between them. Drift near 1 means the model predicted
// the operator well; a consistent skew across operators of one kind is the
// signal to recalibrate that device's InitCom/UnitTr constants (see the
// calibration experiment).
package plan

import (
	"fmt"
	"strings"

	"ocas/internal/core"
	"ocas/internal/cost"
	"ocas/internal/exec"
	"ocas/internal/memory"
	sym "ocas/internal/symbolic"
)

// ExplainOp is one operator of the EXPLAIN ANALYZE tree. All counters are
// cumulative (a node includes its children), the usual EXPLAIN ANALYZE
// convention. Every field except WallNanos is deterministic across executor
// worker counts; NormalizeExplain zeroes WallNanos for comparisons.
type ExplainOp struct {
	Op     string `json:"op"`
	Detail string `json:"detail,omitempty"`
	// Parts is the morsel partition count of the operator (1 = serial).
	Parts int `json:"parts"`

	// Actuals, measured by the instrumented run.
	Batches    int64   `json:"batches"`
	Rows       int64   `json:"rows"`
	WallNanos  int64   `json:"wallNanos"`
	SimSeconds float64 `json:"simSeconds"`
	ReadInits  int64   `json:"readInits"`
	WriteInits int64   `json:"writeInits"`
	BytesRead  int64   `json:"bytesRead"`
	BytesWrite int64   `json:"bytesWrite"`
	PoolPins   int64   `json:"poolPins"`
	Spills     int64   `json:"spills"`
	SpillBytes int64   `json:"spillBytes"`

	// Estimates: the cost model applied to this operator's subexpression at
	// the plan's tuned parameters and the executed cardinalities. Absent
	// (zero, with EstValid false) when the subexpression is not costable in
	// isolation.
	EstValid   bool    `json:"estValid,omitempty"`
	EstSeconds float64 `json:"estSeconds,omitempty"`
	EstInits   float64 `json:"estInits,omitempty"`
	EstBytes   float64 `json:"estBytes,omitempty"`

	// Drift ratios (estimate / actual; 0 when the actual is 0 or there is
	// no estimate). DriftSeconds compares estimated to simulated seconds,
	// DriftBytes estimated to simulated transferred bytes (read + write).
	DriftSeconds float64 `json:"driftSeconds,omitempty"`
	DriftBytes   float64 `json:"driftBytes,omitempty"`

	Children []*ExplainOp `json:"children,omitempty"`
}

// explainReport converts the executor's tree, attaching per-node estimates.
// env must already bind the plan parameters and the executed cardinalities.
func explainReport(h *memory.Hierarchy, place cost.Placement, env sym.Env, n *exec.ExplainNode) *ExplainOp {
	if n == nil {
		return nil
	}
	op := &ExplainOp{
		Op: n.Kind, Detail: n.Detail, Parts: n.Parts,
		Batches: n.Batches, Rows: n.Rows,
		WallNanos: n.WallNanos, SimSeconds: n.SimSeconds,
		ReadInits: n.ReadInits, WriteInits: n.WriteInits,
		BytesRead: n.BytesRead, BytesWrite: n.BytesWrite,
		PoolPins: n.PoolPins, Spills: n.Spills, SpillBytes: n.SpillBytes,
	}
	if n.Expr != nil {
		if res, err := cost.Estimate(h, place, n.Expr); err == nil {
			op.EstValid = true
			op.EstSeconds = res.Seconds.Eval(env)
			op.EstInits, op.EstBytes = res.Events.EvalTotals(env)
			if op.SimSeconds > 0 {
				op.DriftSeconds = op.EstSeconds / op.SimSeconds
			}
			if act := n.BytesRead + n.BytesWrite; act > 0 {
				op.DriftBytes = op.EstBytes / float64(act)
			}
		}
	}
	for _, kid := range n.Children {
		if c := explainReport(h, place, env, kid); c != nil {
			op.Children = append(op.Children, c)
		}
	}
	return op
}

// explainEnv is the evaluation environment of the per-node estimates: the
// executed cardinalities (which may differ from the nominal ones the plan
// was tuned for — drift then includes the mistuning) plus the plan's tuned
// parameter values.
func explainEnv(task core.Task, inputRows map[string]int64, params map[string]int64) sym.Env {
	t := task
	if inputRows != nil {
		t.InputRows = inputRows
	}
	env := (&core.Synthesizer{}).TaskEnv(t)
	for k, v := range params {
		env[k] = float64(v)
	}
	return env
}

// NormalizeExplain zeroes every WallNanos in the tree, in place. Wall time
// is the one non-deterministic field of an explain report; comparisons
// across runs or worker counts normalize first.
func NormalizeExplain(op *ExplainOp) {
	if op == nil {
		return
	}
	op.WallNanos = 0
	for _, c := range op.Children {
		NormalizeExplain(c)
	}
}

// RenderExplain renders the tree as indented text for the CLI.
func RenderExplain(op *ExplainOp) string {
	var b strings.Builder
	renderExplain(&b, op, 0)
	return b.String()
}

func renderExplain(b *strings.Builder, op *ExplainOp, depth int) {
	if op == nil {
		return
	}
	ind := strings.Repeat("  ", depth)
	fmt.Fprintf(b, "%s%s", ind, op.Op)
	if op.Parts > 1 {
		fmt.Fprintf(b, " x%d", op.Parts)
	}
	if op.Detail != "" {
		fmt.Fprintf(b, " [%s]", op.Detail)
	}
	fmt.Fprintf(b, "\n%s  rows=%d batches=%d sim=%.6gs", ind, op.Rows, op.Batches, op.SimSeconds)
	fmt.Fprintf(b, " io={r:%dB/%d w:%dB/%d}", op.BytesRead, op.ReadInits, op.BytesWrite, op.WriteInits)
	if op.PoolPins > 0 || op.Spills > 0 {
		fmt.Fprintf(b, " pool={pins:%d spills:%d spillB:%d}", op.PoolPins, op.Spills, op.SpillBytes)
	}
	if op.EstValid {
		fmt.Fprintf(b, "\n%s  est=%.6gs inits=%.6g bytes=%.6g drift={sec:%.3g bytes:%.3g}",
			ind, op.EstSeconds, op.EstInits, op.EstBytes, op.DriftSeconds, op.DriftBytes)
	}
	b.WriteByte('\n')
	for _, c := range op.Children {
		renderExplain(b, c, depth+1)
	}
}
