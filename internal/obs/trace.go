package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is one request's span tree. Spans are stored flat, each carrying
// the index of its parent, so the trace marshals (and renders) without
// recursion. A nil *Trace is a valid no-op sink, which is how tracing is
// gated per request: a request that opted out simply carries a nil trace
// and every span operation reduces to one pointer test.
type Trace struct {
	mu       sync.Mutex
	id       string
	start    time.Time
	durNanos int64
	spans    []*Span
}

// Span is one timed phase of a request: monotonic wall-clock duration plus,
// where the phase ran the storage simulator, the simulated virtual-clock
// delta it advanced.
type Span struct {
	tr     *Trace
	idx    int
	parent int // -1 = root
	name   string
	start  time.Time
	dur    time.Duration
	virt   float64
	attrs  map[string]any
	done   bool
}

// NewTrace starts a trace identified by id (see NewID).
func NewTrace(id string) *Trace {
	return &Trace{id: id, start: time.Now()}
}

// ID returns the trace's identifier ("" for a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// StartSpan opens a child span of parent (nil parent = a root span).
func (t *Trace) StartSpan(name string, parent *Span) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := &Span{tr: t, idx: len(t.spans), parent: -1, name: name, start: time.Now()}
	if parent != nil {
		sp.parent = parent.idx
	}
	t.spans = append(t.spans, sp)
	return sp
}

// Finish stamps the trace's total duration. Call it once, after the last
// span ended.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.durNanos = int64(time.Since(t.start))
	t.mu.Unlock()
}

// TraceID returns the identifier of the span's trace ("" for a nil span).
// Layers that only hold a context use it to attribute work to the request
// that entered the system (e.g. the singleflight leader of a shared
// synthesis).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.tr.ID()
}

// End closes the span (idempotent).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if !s.done {
		s.done = true
		s.dur = time.Since(s.start)
	}
	s.tr.mu.Unlock()
}

// Attr attaches one key/value attribute to the span.
func (s *Span) Attr(k string, v any) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.attrs == nil {
		s.attrs = map[string]any{}
	}
	s.attrs[k] = v
	s.tr.mu.Unlock()
}

// AddVirt adds a simulated virtual-clock delta (seconds) to the span.
func (s *Span) AddVirt(d float64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.virt += d
	s.tr.mu.Unlock()
}

// TraceJSON is the wire form of a trace.
type TraceJSON struct {
	ID       string     `json:"id"`
	Start    time.Time  `json:"start"`
	DurNanos int64      `json:"durNanos"`
	Spans    []SpanJSON `json:"spans"`
}

// SpanJSON is the wire form of one span. StartNanos is the offset from the
// trace start (monotonic); Parent indexes into the trace's span list.
type SpanJSON struct {
	Name           string         `json:"name"`
	Parent         int            `json:"parent"`
	StartNanos     int64          `json:"startNanos"`
	DurNanos       int64          `json:"durNanos"`
	VirtualSeconds float64        `json:"virtualSeconds,omitempty"`
	Attrs          map[string]any `json:"attrs,omitempty"`
}

// Snapshot returns the trace's current wire form.
func (t *Trace) Snapshot() TraceJSON {
	if t == nil {
		return TraceJSON{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := TraceJSON{ID: t.id, Start: t.start, DurNanos: t.durNanos,
		Spans: make([]SpanJSON, len(t.spans))}
	for i, sp := range t.spans {
		js := SpanJSON{
			Name:           sp.name,
			Parent:         sp.parent,
			StartNanos:     int64(sp.start.Sub(t.start)),
			DurNanos:       int64(sp.dur),
			VirtualSeconds: sp.virt,
		}
		if len(sp.attrs) > 0 {
			js.Attrs = make(map[string]any, len(sp.attrs))
			for k, v := range sp.attrs {
				js.Attrs[k] = v
			}
		}
		out.Spans[i] = js
	}
	return out
}

// Ring is a bounded buffer of recent traces with optional JSONL logging:
// when a log writer is set, every added trace is appended to it as one
// JSON line. The ring keeps the most recent capacity traces; older ones
// are evicted in arrival order.
type Ring struct {
	mu    sync.Mutex
	cap   int
	buf   []*Trace
	byID  map[string]*Trace
	next  int
	total int64

	logMu sync.Mutex
	logW  io.Writer
}

// NewRing returns a ring bounded to capacity traces (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{cap: capacity, byID: map[string]*Trace{}}
}

// SetLog directs a copy of every added trace to w as JSON lines (nil
// disables).
func (r *Ring) SetLog(w io.Writer) {
	if r == nil {
		return
	}
	r.logMu.Lock()
	r.logW = w
	r.logMu.Unlock()
}

// Add records a finished trace, evicting the oldest when full.
func (r *Ring) Add(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, t)
	} else {
		old := r.buf[r.next]
		delete(r.byID, old.ID())
		r.buf[r.next] = t
	}
	r.byID[t.ID()] = t
	r.next = (r.next + 1) % r.cap
	r.total++
	r.mu.Unlock()

	r.logMu.Lock()
	w := r.logW
	r.logMu.Unlock()
	if w != nil {
		if data, err := json.Marshal(t.Snapshot()); err == nil {
			r.logMu.Lock()
			fmt.Fprintf(w, "%s\n", data)
			r.logMu.Unlock()
		}
	}
}

// Get returns the trace with the given id, if still buffered.
func (r *Ring) Get(id string) (*Trace, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.byID[id]
	return t, ok
}

// Recent returns up to n of the most recent traces, newest first.
func (r *Ring) Recent(n int) []*Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 || n > len(r.buf) {
		n = len(r.buf)
	}
	out := make([]*Trace, 0, n)
	for i := 0; i < n; i++ {
		idx := (r.next - 1 - i + len(r.buf)*2) % len(r.buf)
		// When the ring is not yet full, next equals len(buf) modulo wrap and
		// the newest element sits at next-1 as well.
		out = append(out, r.buf[idx])
	}
	return out
}

// Len returns the number of buffered traces; Total the number ever added.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Total returns the number of traces ever added.
func (r *Ring) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// idFallback distinguishes IDs when the random source fails.
var idFallback atomic.Int64

// NewID returns a 16-hex-character request/trace identifier.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("req-%016x", idFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// ctxKey carries the active span through a context.
type ctxKey struct{}

// ContextWith returns a context carrying sp as the active span.
func ContextWith(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// SpanFrom returns the context's active span, or nil.
func SpanFrom(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// Start opens a child span of the context's active span and returns a
// context carrying it. When the context carries no span (tracing disabled
// or not a traced request), it returns the context unchanged and a nil
// span — the no-op fast path.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFrom(ctx)
	if parent == nil {
		return ctx, nil
	}
	sp := parent.tr.StartSpan(name, parent)
	return ContextWith(ctx, sp), sp
}
