package obs

import (
	"strconv"
	"strings"
	"testing"
)

func TestRegistryPrometheusText(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests served.", "endpoint")
	c.With("/a").Add(3)
	c.With("/b").Inc()
	g := r.Gauge("test_inflight", "In-flight requests.")
	g.Set(2)
	r.Func("test_cb", "Callback value.", KindGauge, func() float64 { return 7.5 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_requests_total Requests served.",
		"# TYPE test_requests_total counter",
		`test_requests_total{endpoint="/a"} 3`,
		`test_requests_total{endpoint="/b"} 1`,
		"# TYPE test_inflight gauge",
		"test_inflight 2",
		"test_cb 7.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Families render sorted by name.
	if strings.Index(out, "test_cb") > strings.Index(out, "test_inflight") ||
		strings.Index(out, "test_inflight") > strings.Index(out, "test_requests_total") {
		t.Errorf("families not sorted:\n%s", out)
	}
}

// TestHistogramBuckets checks the exposition invariants of a histogram:
// cumulative bucket counts are monotonically non-decreasing, the +Inf
// bucket equals _count, and _sum matches the observations.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.01, 0.1, 1}, "ep")
	s := h.With("/x")
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		s.Observe(v)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	var cum []int64
	var count int64 = -1
	var sum float64
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.HasPrefix(line, "test_latency_seconds_bucket"):
			fields := strings.Fields(line)
			v, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			cum = append(cum, v)
		case strings.HasPrefix(line, "test_latency_seconds_count"):
			fields := strings.Fields(line)
			count, _ = strconv.ParseInt(fields[len(fields)-1], 10, 64)
		case strings.HasPrefix(line, "test_latency_seconds_sum"):
			fields := strings.Fields(line)
			sum, _ = strconv.ParseFloat(fields[len(fields)-1], 64)
		}
	}
	if len(cum) != 4 {
		t.Fatalf("want 4 bucket lines (3 bounds + +Inf), got %d:\n%s", len(cum), out)
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Errorf("bucket counts not monotone: %v", cum)
		}
	}
	if want := []int64{1, 3, 4, 5}; cum[0] != want[0] || cum[1] != want[1] || cum[2] != want[2] || cum[3] != want[3] {
		t.Errorf("cumulative counts %v, want %v", cum, want)
	}
	if count != 5 {
		t.Errorf("_count = %d, want 5", count)
	}
	if wantSum := 0.005 + 0.05 + 0.05 + 0.5 + 5; sum != wantSum {
		t.Errorf("_sum = %v, want %v", sum, wantSum)
	}
	if !strings.Contains(out, `le="+Inf"`) {
		t.Errorf("no +Inf bucket:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_esc", "Escaping.", "k").With("a\"b\\c\nd").Inc()
	var b strings.Builder
	r.WritePrometheus(&b)
	if want := `test_esc{k="a\"b\\c\nd"} 1`; !strings.Contains(b.String(), want) {
		t.Errorf("want %q in:\n%s", want, b.String())
	}
}

// TestNilSafety: a nil registry, vec and series must absorb every call.
func TestNilSafety(t *testing.T) {
	var r *Registry
	v := r.Counter("x", "y")
	v.Inc()
	v.Add(2)
	v.Observe(1)
	if v.Value() != 0 {
		t.Error("nil vec value")
	}
	var s *Series
	s.Inc()
	s.Observe(3)
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Error(err)
	}
	var tr *Trace
	sp := tr.StartSpan("x", nil)
	sp.End()
	sp.Attr("k", 1)
	sp.AddVirt(2)
	tr.Finish()
	if tr.ID() != "" || sp.TraceID() != "" {
		t.Error("nil trace id")
	}
	var ring *Ring
	ring.Add(tr)
	if ring.Len() != 0 || ring.Total() != 0 {
		t.Error("nil ring")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "a")
	defer func() {
		if recover() == nil {
			t.Error("no panic on kind mismatch")
		}
	}()
	r.Gauge("m", "b")
}
