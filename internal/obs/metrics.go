// Package obs is the zero-dependency observability layer of the stack: a
// metrics registry rendered in the Prometheus text exposition format, and a
// per-request trace model (parent/child spans carrying both monotonic
// wall-clock durations and simulated virtual-clock deltas) recorded into a
// bounded in-memory ring.
//
// The package deliberately depends on the standard library alone and on no
// other internal package, so every layer — service, plan cache, synthesis
// core, executor — can report into it without import cycles. All types are
// nil-safe: a nil *Registry, *Vec, *Series, *Trace or *Span turns every
// method into a no-op, which is how instrumentation stays off the hot path
// when observability is disabled — callers hold nil handles and pay one
// pointer test, no atomics, no allocation.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is a metric family's Prometheus type.
type Kind string

const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Registry holds metric families and renders them as Prometheus text.
// The zero value is not usable; call NewRegistry. A nil *Registry is a
// valid no-op sink.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one named metric with a fixed label schema. Labeled children
// (series) are created on first use.
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string
	bounds []float64      // histogram bucket upper bounds, ascending
	fn     func() float64 // callback families render this instead of series

	mu     sync.Mutex
	series map[string]*Series
	order  []*Series
}

// Vec is a handle on one metric family; With selects a labeled series.
type Vec struct{ f *family }

// Series is one labeled time series: a counter/gauge value or a histogram.
type Series struct {
	labels []string
	bounds []float64      // histogram bounds (shared with the family)
	val    atomic.Int64   // counter/gauge value
	sum    atomic.Uint64  // histogram sum, float64 bits
	count  atomic.Int64   // histogram observation count
	counts []atomic.Int64 // per-bucket (non-cumulative) counts; last = +Inf
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

func (r *Registry) register(name, help string, kind Kind, bounds []float64, fn func() float64, labels []string) *family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", name, kind, f.kind))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, bounds: bounds, fn: fn,
		labels: labels, series: map[string]*Series{}}
	r.families[name] = f
	return f
}

// Counter registers (or fetches) a monotonic counter family.
func (r *Registry) Counter(name, help string, labels ...string) *Vec {
	f := r.register(name, help, KindCounter, nil, nil, labels)
	if f == nil {
		return nil
	}
	return &Vec{f: f}
}

// Gauge registers (or fetches) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *Vec {
	f := r.register(name, help, KindGauge, nil, nil, labels)
	if f == nil {
		return nil
	}
	return &Vec{f: f}
}

// Histogram registers (or fetches) a fixed-bucket histogram family. Bounds
// are upper bucket limits in ascending order; a +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Vec {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	f := r.register(name, help, KindHistogram, b, nil, labels)
	if f == nil {
		return nil
	}
	return &Vec{f: f}
}

// Func registers a callback-backed family (counter or gauge): the value is
// read at scrape time. Use it to expose counters that already live
// elsewhere (cache tiers, semaphores) without double bookkeeping.
func (r *Registry) Func(name, help string, kind Kind, fn func() float64) {
	r.register(name, help, kind, nil, fn, nil)
}

// DefLatencyBuckets are the default request-latency histogram bounds, in
// seconds: 100µs to 10s, roughly geometric.
func DefLatencyBuckets() []float64 {
	return []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
		0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}

// With selects the series for the given label values (created on first
// use). The number of values must match the family's label schema.
func (v *Vec) With(vals ...string) *Series {
	if v == nil || v.f == nil {
		return nil
	}
	f := v.f
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(vals)))
	}
	key := strings.Join(vals, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &Series{labels: append([]string(nil), vals...), bounds: f.bounds}
		if f.kind == KindHistogram {
			s.counts = make([]atomic.Int64, len(f.bounds)+1)
		}
		f.series[key] = s
		f.order = append(f.order, s)
	}
	return s
}

// Add, Inc, Set, Observe and Value on a Vec operate on the label-less
// series (convenience for unlabeled metrics).
func (v *Vec) Add(n int64)       { v.With().Add(n) }
func (v *Vec) Inc()              { v.With().Inc() }
func (v *Vec) Set(n int64)       { v.With().Set(n) }
func (v *Vec) Observe(x float64) { v.With().Observe(x) }
func (v *Vec) Value() int64      { return v.With().Value() }

// Add increments a counter (or gauge) by n.
func (s *Series) Add(n int64) {
	if s == nil {
		return
	}
	s.val.Add(n)
}

// Inc increments by one.
func (s *Series) Inc() { s.Add(1) }

// Set sets a gauge.
func (s *Series) Set(n int64) {
	if s == nil {
		return
	}
	s.val.Store(n)
}

// Value returns the current counter/gauge value.
func (s *Series) Value() int64 {
	if s == nil {
		return 0
	}
	return s.val.Load()
}

// Observe records one histogram observation: a linear scan over the fixed
// bounds (they are few) and a lock-free float accumulation into the sum.
func (s *Series) Observe(x float64) {
	if s == nil || s.counts == nil {
		return
	}
	i := 0
	for ; i < len(s.bounds); i++ {
		if x <= s.bounds[i] {
			break
		}
	}
	s.counts[i].Add(1)
	s.count.Add(1)
	for {
		old := s.sum.Load()
		nu := math.Float64bits(math.Float64frombits(old) + x)
		if s.sum.CompareAndSwap(old, nu) {
			return
		}
	}
}

// WritePrometheus renders every family in the text exposition format,
// sorted by metric name (series sorted by label values), so scrapes are
// deterministic and diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, 0, len(names))
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) write(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	if f.fn != nil {
		fmt.Fprintf(b, "%s %s\n", f.name, formatFloat(f.fn()))
		return
	}
	f.mu.Lock()
	series := append([]*Series(nil), f.order...)
	f.mu.Unlock()
	sort.Slice(series, func(i, j int) bool {
		return strings.Join(series[i].labels, "\xff") < strings.Join(series[j].labels, "\xff")
	})
	for _, s := range series {
		switch f.kind {
		case KindHistogram:
			cum := int64(0)
			for i, bound := range f.bounds {
				cum += s.counts[i].Load()
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
					labelString(f.labels, s.labels, "le", formatFloat(bound)), cum)
			}
			cum += s.counts[len(f.bounds)].Load()
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
				labelString(f.labels, s.labels, "le", "+Inf"), cum)
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labelString(f.labels, s.labels, "", ""),
				formatFloat(math.Float64frombits(s.sum.Load())))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, labelString(f.labels, s.labels, "", ""), s.count.Load())
		default:
			fmt.Fprintf(b, "%s%s %d\n", f.name, labelString(f.labels, s.labels, "", ""), s.val.Load())
		}
	}
}

// labelString renders {k="v",...}, optionally appending one extra pair
// (the histogram le label); empty when there are no labels at all. %q
// escaping matches the exposition format's label escaping (backslash,
// quote, newline).
func labelString(keys, vals []string, extraK, extraV string) string {
	if len(keys) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, vals[i])
	}
	if extraK != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraK, extraV)
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(x float64) string {
	if math.IsInf(x, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(x, 'g', -1, 64)
}
