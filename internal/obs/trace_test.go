package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

func TestTraceSpans(t *testing.T) {
	tr := NewTrace("abc")
	root := tr.StartSpan("GET /x", nil)
	child := tr.StartSpan("resolve", root)
	child.Attr("outcome", "miss")
	child.AddVirt(1.5)
	child.AddVirt(0.5)
	child.End()
	root.End()
	tr.Finish()

	js := tr.Snapshot()
	if js.ID != "abc" || len(js.Spans) != 2 {
		t.Fatalf("snapshot %+v", js)
	}
	if js.Spans[0].Parent != -1 || js.Spans[1].Parent != 0 {
		t.Errorf("parent links: %+v", js.Spans)
	}
	if js.Spans[1].VirtualSeconds != 2.0 {
		t.Errorf("virtual seconds %v, want 2", js.Spans[1].VirtualSeconds)
	}
	if js.Spans[1].Attrs["outcome"] != "miss" {
		t.Errorf("attrs %+v", js.Spans[1].Attrs)
	}
	if js.DurNanos <= 0 || js.Spans[0].DurNanos <= 0 {
		t.Errorf("durations not stamped: %+v", js)
	}
}

// TestRingEviction: the ring keeps exactly the most recent capacity traces
// and Get stops resolving evicted IDs.
func TestRingEviction(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Add(NewTrace(fmt.Sprintf("t%d", i)))
	}
	if r.Len() != 3 {
		t.Fatalf("ring len %d, want 3", r.Len())
	}
	if r.Total() != 5 {
		t.Fatalf("ring total %d, want 5", r.Total())
	}
	for _, gone := range []string{"t0", "t1"} {
		if _, ok := r.Get(gone); ok {
			t.Errorf("evicted %s still resolvable", gone)
		}
	}
	for _, kept := range []string{"t2", "t3", "t4"} {
		if _, ok := r.Get(kept); !ok {
			t.Errorf("recent %s not resolvable", kept)
		}
	}
	recent := r.Recent(2)
	if len(recent) != 2 || recent[0].ID() != "t4" || recent[1].ID() != "t3" {
		ids := make([]string, len(recent))
		for i, tr := range recent {
			ids[i] = tr.ID()
		}
		t.Errorf("recent order %v, want [t4 t3]", ids)
	}
}

func TestRingLog(t *testing.T) {
	var buf bytes.Buffer
	r := NewRing(2)
	r.SetLog(&buf)
	tr := NewTrace("logme")
	tr.StartSpan("s", nil).End()
	tr.Finish()
	r.Add(tr)
	line := strings.TrimSpace(buf.String())
	var js TraceJSON
	if err := json.Unmarshal([]byte(line), &js); err != nil {
		t.Fatalf("log line not JSON: %v\n%s", err, line)
	}
	if js.ID != "logme" || len(js.Spans) != 1 {
		t.Errorf("logged %+v", js)
	}
}

func TestNewIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewID()
		if len(id) != 16 {
			t.Fatalf("id %q not 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestContextPropagation(t *testing.T) {
	// No span in context: Start is a no-op returning the same context.
	ctx := context.Background()
	ctx2, sp := Start(ctx, "x")
	if sp != nil || ctx2 != ctx {
		t.Fatal("Start without a parent must be a no-op")
	}

	tr := NewTrace("ctx")
	root := tr.StartSpan("root", nil)
	ctx = ContextWith(context.Background(), root)
	_, child := Start(ctx, "child")
	if child == nil {
		t.Fatal("no child span")
	}
	if child.TraceID() != "ctx" {
		t.Errorf("trace id %q", child.TraceID())
	}
	child.End()
	js := tr.Snapshot()
	if len(js.Spans) != 2 || js.Spans[1].Parent != 0 {
		t.Errorf("spans %+v", js.Spans)
	}
}
