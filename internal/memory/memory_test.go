package memory

import (
	"encoding/json"
	"testing"
)

func TestPaperHierarchies(t *testing.T) {
	for name, h := range map[string]*Hierarchy{
		"hdd-ram":   HDDRAM(256 * MiB),
		"cache":     HDDRAMCache(256 * MiB),
		"two-hdd":   TwoHDD(256 * MiB),
		"hdd-flash": HDDFlash(256 * MiB),
	} {
		if h.Root == nil {
			t.Fatalf("%s: nil root", name)
		}
		for _, n := range h.Names() {
			if h.Node(n) == nil {
				t.Errorf("%s: Node(%q) nil", name, n)
			}
		}
	}
}

func TestEdgeCosts(t *testing.T) {
	h := HDDRAM(256 * MiB)
	if got := h.InitCom("hdd", "ram"); got != HDDSeek {
		t.Errorf("InitCom hdd->ram = %v want %v", got, HDDSeek)
	}
	if got := h.InitCom("ram", "hdd"); got != HDDSeek {
		t.Errorf("InitCom ram->hdd = %v want %v", got, HDDSeek)
	}
	if got := h.UnitTr("hdd", "ram"); got != HDDUnitTr {
		t.Errorf("UnitTr hdd->ram = %v", got)
	}
	hf := HDDFlash(256 * MiB)
	if got := hf.InitCom("ram", "ssd"); got != SSDInit {
		t.Errorf("InitCom ram->ssd = %v want %v (erase before write)", got, SSDInit)
	}
	if got := hf.InitCom("ssd", "ram"); got != 0 {
		t.Errorf("InitCom ssd->ram = %v want 0 (no seek on flash reads)", got)
	}
	if hf.UnitTr("ram", "ssd") >= h.UnitTr("ram", "hdd") {
		t.Error("flash sequential write should be faster than HDD")
	}
}

func TestNonAdjacentPanics(t *testing.T) {
	h := TwoHDD(256 * MiB)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-adjacent edge")
		}
	}()
	h.InitCom("hdd", "hdd2")
}

func TestPathToRoot(t *testing.T) {
	h := HDDRAMCache(256 * MiB)
	p, err := h.PathToRoot("hdd")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"hdd", "ram", "cache"}
	if len(p) != len(want) {
		t.Fatalf("got %v want %v", p, want)
	}
	for i := range p {
		if p[i] != want[i] {
			t.Fatalf("got %v want %v", p, want)
		}
	}
	if _, err := h.PathToRoot("nope"); err == nil {
		t.Error("expected error for unknown node")
	}
}

func TestValidation(t *testing.T) {
	cases := []*Node{
		nil,
		{Name: "", Size: 1},
		{Name: "a", Size: 0},
		{Name: "a", Size: 1, Children: []*Node{{Name: "a", Size: 1}}}, // dup
		{Name: "a", Size: 1, PageSize: -1},
	}
	for i, n := range cases {
		if _, err := New(n); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	h := HDDFlash(64 * MiB)
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Root.Name != h.Root.Name || len(h2.Root.Children) != len(h.Root.Children) {
		t.Error("round trip changed structure")
	}
	if h2.InitCom("ram", "ssd") != SSDInit {
		t.Error("edge cost lost in round trip")
	}
	if _, err := FromJSON([]byte("{")); err == nil {
		t.Error("expected parse error")
	}
}

func TestParent(t *testing.T) {
	h := TwoHDD(MiB)
	if h.Parent("ram") != nil {
		t.Error("root has no parent")
	}
	if h.Parent("hdd2").Name != "ram" {
		t.Error("hdd2 parent should be ram")
	}
}
