// Package memory models the tree-shaped memory hierarchies of Section 4.
// Every node is a hardware component able to store data; edges represent the
// ability to transfer data between adjacent levels and carry the two cost
// metrics of the paper: InitCom (initiating a transfer: a disk seek, a flash
// erase) and UnitTr (transferring one byte).
package memory

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Kind describes the physical nature of a node; it selects the simulator
// behaviour (seeking for disks, erase blocks for flash, none for RAM/cache).
type Kind string

const (
	RAM   Kind = "ram"
	HDD   Kind = "hdd"
	Flash Kind = "flash"
	Cache Kind = "cache"
)

// Node is one level of the hierarchy with the properties of Figure 3.
type Node struct {
	Name     string `json:"name"`
	Kind     Kind   `json:"kind"`
	Size     int64  `json:"size"`               // bytes; must be set for all nodes
	PageSize int64  `json:"pagesize,omitempty"` // access granularity; 1 = byte-addressable
	MaxSeqR  int64  `json:"maxSeqR,omitempty"`  // max bytes per read request (0 = unlimited)
	MaxSeqW  int64  `json:"maxSeqW,omitempty"`  // max bytes per write request (flash: erase block)

	Children []*Node `json:"children,omitempty"`

	// Edge costs to the parent, one per direction, in seconds (InitCom)
	// and seconds per byte (UnitTr). Following the paper, costs the
	// developer chooses to ignore are simply zero.
	InitComUp   float64 `json:"initComUp,omitempty"`   // this -> parent
	InitComDown float64 `json:"initComDown,omitempty"` // parent -> this
	UnitTrUp    float64 `json:"unitTrUp,omitempty"`
	UnitTrDown  float64 `json:"unitTrDown,omitempty"`
}

// Hierarchy is a validated memory hierarchy. The root is the fastest level
// (where the single processing unit reads its data); leaves are storage
// devices.
type Hierarchy struct {
	Root  *Node
	nodes map[string]*Node
	paren map[string]*Node
}

// New validates the tree and returns a Hierarchy.
func New(root *Node) (*Hierarchy, error) {
	h := &Hierarchy{Root: root, nodes: map[string]*Node{}, paren: map[string]*Node{}}
	var walk func(n, parent *Node) error
	walk = func(n, parent *Node) error {
		if n.Name == "" {
			return fmt.Errorf("memory: node without a name")
		}
		if _, dup := h.nodes[n.Name]; dup {
			return fmt.Errorf("memory: duplicate node name %q", n.Name)
		}
		if n.Size <= 0 {
			return fmt.Errorf("memory: node %q must have a positive size", n.Name)
		}
		if n.PageSize < 0 || n.MaxSeqR < 0 || n.MaxSeqW < 0 {
			return fmt.Errorf("memory: node %q has negative properties", n.Name)
		}
		h.nodes[n.Name] = n
		if parent != nil {
			h.paren[n.Name] = parent
		}
		for _, c := range n.Children {
			if err := walk(c, n); err != nil {
				return err
			}
		}
		return nil
	}
	if root == nil {
		return nil, fmt.Errorf("memory: nil root")
	}
	if err := walk(root, nil); err != nil {
		return nil, err
	}
	return h, nil
}

// Node returns the named node, or nil.
func (h *Hierarchy) Node(name string) *Node { return h.nodes[name] }

// Parent returns the parent of the named node (nil for the root).
func (h *Hierarchy) Parent(name string) *Node { return h.paren[name] }

// Names lists node names in preorder.
func (h *Hierarchy) Names() []string {
	var out []string
	var walk func(n *Node)
	walk = func(n *Node) {
		out = append(out, n.Name)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(h.Root)
	return out
}

// InitCom returns the transfer-initiation cost in seconds for moving data
// between the adjacent nodes from -> to (Figure 3 edge property). Requesting
// a non-adjacent pair is a programming error and panics.
func (h *Hierarchy) InitCom(from, to string) float64 {
	up, node := h.edge(from, to)
	if up {
		return node.InitComUp
	}
	return node.InitComDown
}

// UnitTr returns the per-byte transfer cost in seconds between adjacent
// nodes from -> to.
func (h *Hierarchy) UnitTr(from, to string) float64 {
	up, node := h.edge(from, to)
	if up {
		return node.UnitTrUp
	}
	return node.UnitTrDown
}

// edge resolves an adjacent pair: returns (true, child) when from is the
// child (upward transfer), (false, child) when from is the parent.
func (h *Hierarchy) edge(from, to string) (bool, *Node) {
	if p := h.paren[from]; p != nil && p.Name == to {
		return true, h.nodes[from]
	}
	if p := h.paren[to]; p != nil && p.Name == from {
		return false, h.nodes[to]
	}
	panic(fmt.Sprintf("memory: %q and %q are not adjacent", from, to))
}

// PathToRoot returns the node names from the given node up to the root,
// inclusive.
func (h *Hierarchy) PathToRoot(name string) ([]string, error) {
	n, ok := h.nodes[name]
	if !ok {
		return nil, fmt.Errorf("memory: unknown node %q", name)
	}
	var out []string
	for n != nil {
		out = append(out, n.Name)
		n = h.paren[n.Name]
	}
	return out, nil
}

// MarshalJSON / load helpers.
func (h *Hierarchy) MarshalJSON() ([]byte, error) { return json.Marshal(h.Root) }

// FromJSON parses a hierarchy description.
func FromJSON(data []byte) (*Hierarchy, error) {
	var root Node
	if err := json.Unmarshal(data, &root); err != nil {
		return nil, fmt.Errorf("memory: %w", err)
	}
	return New(&root)
}

// String renders the tree for diagnostics.
func (h *Hierarchy) String() string {
	var b strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		fmt.Fprintf(&b, "%s%s (%s, size=%d", strings.Repeat("  ", depth), n.Name, n.Kind, n.Size)
		if n.PageSize > 0 {
			fmt.Fprintf(&b, ", page=%d", n.PageSize)
		}
		if n.MaxSeqW > 0 {
			fmt.Fprintf(&b, ", maxSeqW=%d", n.MaxSeqW)
		}
		b.WriteString(")\n")
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(h.Root, 0)
	return b.String()
}
