package memory

// This file encodes the hierarchies and device constants of the paper's
// experimental platform (Figure 7):
//
//	Hard disk:  size = 1T,  pagesize = 4K
//	Flash:      size = 512G, maxSeqW = 256K
//	Cache:      size = 3M,  pagesize = 512B
//	InitCom[HDD<->RAM] = 15 ms        UnitTr[HDD<->RAM] = 1s/30M
//	InitCom[RAM->SSD]  = 1.7 ms       UnitTr[SSD<->RAM] = 1s/120M
//	InitCom[RAM->Cache]= 0.1 ms
//
// Costs not listed are zero, exactly as in the paper ("Costs not included
// are assumed to be zero").
const (
	KiB = int64(1) << 10
	MiB = int64(1) << 20
	GiB = int64(1) << 30
	TiB = int64(1) << 40

	// Figure 7 cost constants, in seconds and seconds/byte.
	HDDSeek      = 0.015
	HDDUnitTr    = 1.0 / (30 * 1 << 20)
	SSDInit      = 0.0017
	SSDUnitTr    = 1.0 / (120 * 1 << 20)
	CacheInit    = 0.0001
	DefaultRAMSz = 4 * (1 << 30)
)

func hddNode(name string) *Node {
	return &Node{
		Name: name, Kind: HDD, Size: 1 * TiB, PageSize: 4 * KiB,
		InitComUp: HDDSeek, InitComDown: HDDSeek,
		UnitTrUp: HDDUnitTr, UnitTrDown: HDDUnitTr,
	}
}

func ssdNode(name string) *Node {
	return &Node{
		Name: name, Kind: Flash, Size: 512 * GiB, MaxSeqW: 256 * KiB,
		InitComUp: 0, InitComDown: SSDInit, // erase cost on writes toward the flash
		UnitTrUp: SSDUnitTr, UnitTrDown: SSDUnitTr,
	}
}

func ramNode(size int64, children ...*Node) *Node {
	return &Node{Name: "ram", Kind: RAM, Size: size, PageSize: 1, Children: children}
}

// HDDRAM is the running-example hierarchy: RAM root with one hard disk.
func HDDRAM(ramSize int64) *Hierarchy {
	h, err := New(ramNode(ramSize, hddNode("hdd")))
	if err != nil {
		panic(err)
	}
	return h
}

// HDDRAMCache extends HDDRAM with one level of CPU cache above RAM. The
// cache is the root (fastest level; the paper models it as an extra level
// the processing unit reads through).
func HDDRAMCache(ramSize int64) *Hierarchy {
	cache := &Node{
		Name: "cache", Kind: Cache, Size: 3 * MiB, PageSize: 512,
		Children: []*Node{ramNode(ramSize, hddNode("hdd"))},
	}
	ram := cache.Children[0]
	ram.InitComUp = CacheInit // RAM -> cache initiation (upward on the ram node)
	h, err := New(cache)
	if err != nil {
		panic(err)
	}
	return h
}

// TwoHDD has two hard disks under RAM (input on one, output on the other).
func TwoHDD(ramSize int64) *Hierarchy {
	h, err := New(ramNode(ramSize, hddNode("hdd"), hddNode("hdd2")))
	if err != nil {
		panic(err)
	}
	return h
}

// HDDFlash has a hard disk (input) and a flash drive (output) under RAM.
func HDDFlash(ramSize int64) *Hierarchy {
	h, err := New(ramNode(ramSize, hddNode("hdd"), ssdNode("ssd")))
	if err != nil {
		panic(err)
	}
	return h
}
