package catalog

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCloseFlushDurability drives the graceful-shutdown path: Append leaves
// rows buffered below the flush threshold, Close must cut them into a final
// segment with no .tmp leftovers, and a reopened catalog must see every row.
func TestCloseFlushDurability(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, Options{FlushRows: 256})
	if err != nil {
		t.Fatal(err)
	}
	sch := Schema{Columns: []Column{{Name: "k"}, {Name: "v"}}, Key: []int{0}}
	if err := c.Create("orders", sch); err != nil {
		t.Fatal(err)
	}
	rows := make([]int32, 0, 1000)
	for k := int32(0); k < 500; k++ {
		rows = append(rows, k, k*3+1)
	}
	if _, err := c.Append("orders", rows); err != nil {
		t.Fatal(err)
	}
	rows = rows[:0]
	for k := int32(500); k < 600; k++ {
		rows = append(rows, k, k+7)
	}
	if _, err := c.Append("orders", rows); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("leftover tmp file %s", e.Name())
		}
	}
	c2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	info, ok := c2.Info("orders")
	if !ok || info.Rows != 600 || info.Segments != 3 {
		t.Fatalf("reopen: %+v ok=%v", info, ok)
	}
	for _, seg := range c2.man.Tables["orders"].Segments {
		if _, err := os.Stat(filepath.Join(dir, seg.File)); err != nil {
			t.Errorf("segment missing: %v", err)
		}
	}
}
