package catalog

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func pairSchema() Schema {
	return Schema{
		Columns: []Column{{Name: "k", Type: "int32"}, {Name: "v", Type: "int32"}},
		Key:     []int{0},
	}
}

func mustOpen(t *testing.T, dir string, opts Options) *Catalog {
	t.Helper()
	c, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func readAll(t *testing.T, c *Catalog, name string) []int32 {
	t.Helper()
	h, err := c.OpenTable(name)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	out := make([]int32, h.Rows()*int64(h.Arity()))
	if err := h.ReadRecords(out, 0, h.Rows()); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCreateIngestRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, Options{FlushRows: 4})
	if err := c.Create("users", pairSchema()); err != nil {
		t.Fatal(err)
	}
	// Ten rows with an unsorted batch: flush threshold 4 cuts segments, the
	// rest stays buffered until Close.
	batch := []int32{5, 50, 1, 10, 3, 30, 2, 20, 4, 40, 9, 90, 7, 70, 6, 60, 8, 80, 0, 0}
	total, err := c.Append("users", batch)
	if err != nil {
		t.Fatal(err)
	}
	if total != 10 {
		t.Fatalf("total rows %d want 10", total)
	}
	info, ok := c.Info("users")
	if !ok || info.Rows != 10 {
		t.Fatalf("info %+v", info)
	}
	if info.Segments == 0 || info.BufferedRows == 0 {
		t.Fatalf("expected both durable segments and a buffered tail, got %+v", info)
	}
	want := readAll(t, c, "users")
	if len(want) != 20 {
		t.Fatalf("read %d values want 20", len(want))
	}
	// Batch is key-sorted on ingest: first row is key 0.
	if want[0] != 0 {
		t.Fatalf("first key %d want 0 (batch should be key-sorted)", want[0])
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: everything durable now, content identical.
	c2 := mustOpen(t, dir, Options{FlushRows: 4})
	info2, ok := c2.Info("users")
	if !ok || info2.Rows != 10 || info2.BufferedRows != 0 {
		t.Fatalf("after restart: %+v", info2)
	}
	got := readAll(t, c2, "users")
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("value %d: got %d want %d after restart", i, got[i], want[i])
		}
	}

	// Drop removes manifest entry and files.
	segs, _ := filepath.Glob(filepath.Join(dir, "users-*.seg"))
	if len(segs) == 0 {
		t.Fatal("expected segment files on disk")
	}
	if err := c2.Drop("users"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Info("users"); ok {
		t.Fatal("dropped table still listed")
	}
	segs, _ = filepath.Glob(filepath.Join(dir, "users-*.seg"))
	if len(segs) != 0 {
		t.Fatalf("segment files survived drop: %v", segs)
	}
	c2.Close()

	// Third open: the drop is durable.
	c3 := mustOpen(t, dir, Options{})
	if _, ok := c3.Info("users"); ok {
		t.Fatal("dropped table resurrected after restart")
	}
	c3.Close()
}

func TestVersionsBumpOnMutation(t *testing.T) {
	c := mustOpen(t, t.TempDir(), Options{FlushRows: 2})
	if err := c.Create("t", pairSchema()); err != nil {
		t.Fatal(err)
	}
	v0 := mustInfo(t, c, "t").Version
	if _, err := c.Append("t", []int32{1, 1}); err != nil {
		t.Fatal(err)
	}
	v1 := mustInfo(t, c, "t").Version
	if v1 <= v0 {
		t.Fatalf("version did not bump on ingest: %d -> %d", v0, v1)
	}
	if _, err := c.Append("t", []int32{2, 2}); err != nil { // crosses flush threshold
		t.Fatal(err)
	}
	v2 := mustInfo(t, c, "t").Version
	if v2 <= v1 {
		t.Fatalf("version did not bump on flush: %d -> %d", v1, v2)
	}
	c.Close()
}

func mustInfo(t *testing.T, c *Catalog, name string) TableInfo {
	t.Helper()
	info, ok := c.Info(name)
	if !ok {
		t.Fatalf("table %q missing", name)
	}
	return info
}

func TestConcurrentIngest(t *testing.T) {
	c := mustOpen(t, t.TempDir(), Options{FlushRows: 64})
	if err := c.Create("t", pairSchema()); err != nil {
		t.Fatal(err)
	}
	const (
		workers = 8
		batches = 10
		perRows = 20
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				batch := make([]int32, 0, perRows*2)
				for r := 0; r < perRows; r++ {
					k := int32(w*1000 + b*100 + r)
					batch = append(batch, k, k*2)
				}
				if _, err := c.Append("t", batch); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	// Concurrent readers and listers while ingest runs.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				h, err := c.OpenTable("t")
				if err != nil {
					t.Errorf("open: %v", err)
					return
				}
				if n := h.Rows(); n > 0 {
					dst := make([]int32, n*2)
					if err := h.ReadRecords(dst, 0, n); err != nil {
						t.Errorf("read: %v", err)
					}
				}
				h.Close()
				c.List()
				c.Stats()
			}
		}()
	}
	wg.Wait()
	wantRows := int64(workers * batches * perRows)
	if got := mustInfo(t, c, "t").Rows; got != wantRows {
		t.Fatalf("rows %d want %d", got, wantRows)
	}
	// Every ingested value must still be present exactly once.
	all := readAll(t, c, "t")
	seen := map[int32]bool{}
	for i := 0; i < len(all); i += 2 {
		if all[i+1] != all[i]*2 {
			t.Fatalf("row (%d,%d) corrupted", all[i], all[i+1])
		}
		if seen[all[i]] {
			t.Fatalf("duplicate key %d", all[i])
		}
		seen[all[i]] = true
	}
	if int64(len(seen)) != wantRows {
		t.Fatalf("distinct keys %d want %d", len(seen), wantRows)
	}
	c.Close()
}

func TestSegmentsAreSortedRuns(t *testing.T) {
	c := mustOpen(t, t.TempDir(), Options{FlushRows: 8})
	if err := c.Create("t", pairSchema()); err != nil {
		t.Fatal(err)
	}
	// Two individually sorted batches that interleave: the flushed segment
	// must be one globally sorted run.
	if _, err := c.Append("t", []int32{1, 0, 3, 0, 5, 0, 7, 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Append("t", []int32{0, 0, 2, 0, 4, 0, 6, 0}); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2 := mustOpen(t, c.Dir(), Options{})
	defer c2.Close()
	all := readAll(t, c2, "t")
	for i := 2; i < len(all); i += 2 {
		if all[i] < all[i-2] {
			t.Fatalf("segment not sorted at row %d: %d < %d", i/2, all[i], all[i-2])
		}
	}
	info := mustInfo(t, c2, "t")
	if info.Segments != 1 {
		t.Fatalf("segments %d want 1", info.Segments)
	}
}

func TestValidation(t *testing.T) {
	c := mustOpen(t, t.TempDir(), Options{})
	defer c.Close()
	if err := c.Create("bad name!", pairSchema()); err == nil {
		t.Fatal("invalid name accepted")
	}
	if err := c.Create("t", Schema{}); err == nil {
		t.Fatal("empty schema accepted")
	}
	if err := c.Create("t", Schema{Columns: []Column{{Name: "a", Type: "float64"}}}); err == nil {
		t.Fatal("non-int32 type accepted")
	}
	if err := c.Create("t", Schema{Columns: []Column{{Name: "a"}}, Key: []int{3}}); err == nil {
		t.Fatal("out-of-range key accepted")
	}
	if err := c.Create("t", pairSchema()); err != nil {
		t.Fatal(err)
	}
	if err := c.Create("t", pairSchema()); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if _, err := c.Append("t", []int32{1, 2, 3}); err == nil {
		t.Fatal("non-multiple batch accepted")
	}
	if _, err := c.Append("nope", []int32{1, 2}); err == nil {
		t.Fatal("append to missing table accepted")
	}
	if err := c.Drop("nope"); err == nil {
		t.Fatal("drop of missing table accepted")
	}
}

func TestCorruptManifestRejected(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{nope"), 0o644)
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
}

func TestSnapshotHandleSurvivesDrop(t *testing.T) {
	c := mustOpen(t, t.TempDir(), Options{FlushRows: 2})
	if err := c.Create("t", pairSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Append("t", []int32{1, 10, 2, 20, 3, 30, 4, 40}); err != nil {
		t.Fatal(err)
	}
	h, err := c.OpenTable("t")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if err := c.Drop("t"); err != nil {
		t.Fatal(err)
	}
	dst := make([]int32, h.Rows()*2)
	if err := h.ReadRecords(dst, 0, h.Rows()); err != nil {
		t.Fatalf("snapshot read after drop: %v", err)
	}
	if dst[0] != 1 || dst[1] != 10 {
		t.Fatalf("snapshot content wrong: %v", dst[:2])
	}
	c.Close()
}
