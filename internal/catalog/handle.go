package catalog

import (
	"fmt"
	"path/filepath"

	"ocas/internal/storage"
)

// Handle is a consistent read snapshot of one table: the segment readers
// open at OpenTable time plus a copy of the then-buffered rows. Concurrent
// ingest or even a Drop does not disturb a handle mid-scan (open
// descriptors survive the unlink). A Handle implements storage.Backing
// through ReadCols, so it plugs straight into Device.NewBackedSpill /
// exec.NewBackedTable — segment chunks stream into the spill's column
// vectors without a row transpose.
//
// ReadRecords and ReadCols are not safe for concurrent calls on one Handle
// (segment readers share a scratch buffer); the executor satisfies this by
// materializing a backed spill's payload exactly once behind a sync.Once.
type Handle struct {
	name  string
	arity int
	rows  int64
	segs  []storage.Segment
	bases []int64 // starting row of each segment
	buf   []int32 // copy of rows buffered at snapshot time
}

// OpenTable opens a read snapshot of the named table.
func (c *Catalog) OpenTable(name string) (*Handle, error) {
	c.mu.Lock()
	t, ok := c.man.Tables[name]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("catalog: table %q does not exist", name)
	}
	metas := append([]SegmentMeta(nil), t.Segments...)
	buf := append([]int32(nil), c.buf[name]...)
	arity := t.Schema.Arity()
	dir, mmap := c.dir, c.opts.Mmap
	c.mu.Unlock()

	h := &Handle{name: name, arity: arity, buf: buf}
	for _, m := range metas {
		seg, err := storage.OpenSegment(filepath.Join(dir, m.File), mmap)
		if err != nil {
			h.Close()
			return nil, fmt.Errorf("catalog: open segment %s: %w", m.File, err)
		}
		if seg.Cols() != arity || seg.Rows() != m.Rows {
			h.Close()
			seg.Close()
			return nil, fmt.Errorf("catalog: segment %s shape %dx%d does not match manifest %dx%d",
				m.File, seg.Rows(), seg.Cols(), m.Rows, arity)
		}
		h.bases = append(h.bases, h.rows)
		h.segs = append(h.segs, seg)
		h.rows += seg.Rows()
	}
	h.rows += int64(len(buf) / arity)
	return h, nil
}

// Name returns the table name the handle snapshots.
func (h *Handle) Name() string { return h.name }

// Rows returns the snapshot's total row count (durable + buffered).
func (h *Handle) Rows() int64 { return h.rows }

// Arity returns the number of int32 columns per row.
func (h *Handle) Arity() int { return h.arity }

// ReadRecords fills dst with n rows starting at row lo, row-major, reading
// across segment boundaries and into the buffered tail.
func (h *Handle) ReadRecords(dst []int32, lo, n int64) error {
	if lo < 0 || n < 0 || lo+n > h.rows {
		return fmt.Errorf("catalog: read [%d,%d) out of %d rows", lo, lo+n, h.rows)
	}
	cols := int64(h.arity)
	for i, seg := range h.segs {
		if n == 0 {
			return nil
		}
		base := h.bases[i]
		if lo >= base+seg.Rows() {
			continue
		}
		in := lo - base
		take := seg.Rows() - in
		if take > n {
			take = n
		}
		if err := seg.ReadRows(dst[:take*cols], in, take); err != nil {
			return err
		}
		dst = dst[take*cols:]
		lo += take
		n -= take
	}
	if n > 0 {
		durable := h.rows - int64(len(h.buf))/cols
		in := (lo - durable) * cols
		copy(dst, h.buf[in:in+n*cols])
	}
	return nil
}

// ReadCols fills dst[c] with column c of n rows starting at row lo,
// reading across segment boundaries and into the buffered tail. It
// implements storage.Backing: segment chunks are already column-major, so
// durable rows reach the destination vectors without a transpose.
func (h *Handle) ReadCols(dst [][]int32, lo, n int64) error {
	if lo < 0 || n < 0 || lo+n > h.rows {
		return fmt.Errorf("catalog: read [%d,%d) out of %d rows", lo, lo+n, h.rows)
	}
	if len(dst) < h.arity {
		return fmt.Errorf("catalog: read dst %d columns, table has %d", len(dst), h.arity)
	}
	cols := int64(h.arity)
	out := int64(0)
	sub := make([][]int32, h.arity)
	for i, seg := range h.segs {
		if n == 0 {
			return nil
		}
		base := h.bases[i]
		if lo >= base+seg.Rows() {
			continue
		}
		in := lo - base
		take := seg.Rows() - in
		if take > n {
			take = n
		}
		for c := range sub {
			sub[c] = dst[c][out : out+take]
		}
		if err := seg.ReadCols(sub, in, take); err != nil {
			return err
		}
		out += take
		lo += take
		n -= take
	}
	if n > 0 {
		durable := h.rows - int64(len(h.buf))/cols
		in := lo - durable
		for c := int64(0); c < cols; c++ {
			d := dst[c][out : out+n]
			for r := int64(0); r < n; r++ {
				d[r] = h.buf[(in+r)*cols+c]
			}
		}
	}
	return nil
}

// ViewCols implements storage.ColViewer: when [lo, lo+n) lies entirely
// inside one memory-mapped segment chunk, it returns zero-copy column
// views over the mapped file bytes, reusing dst as the view header.
// ok=false (range spans segments, reaches the buffered tail, or the
// segment cannot view) sends the caller to the copying ReadCols path.
// Unlike ReadRecords/ReadCols, ViewCols touches no shared scratch and is
// safe for concurrent calls on one Handle.
func (h *Handle) ViewCols(dst [][]int32, lo, n int64) ([][]int32, bool) {
	if lo < 0 || n <= 0 || lo+n > h.rows {
		return nil, false
	}
	for i, seg := range h.segs {
		base := h.bases[i]
		if lo < base {
			return nil, false
		}
		if lo >= base+seg.Rows() {
			continue
		}
		if lo+n > base+seg.Rows() {
			return nil, false // spans into the next segment or the buffer
		}
		return seg.ViewCols(dst, lo-base, n)
	}
	return nil, false // buffered tail (row-major, never viewable)
}

// Close releases the handle's segment readers.
func (h *Handle) Close() error {
	var firstErr error
	for _, seg := range h.segs {
		if err := seg.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	h.segs = nil
	return firstErr
}
