// Package catalog is the durable table layer: named tables with typed int32
// column schemas, stored as columnar segment files (storage.Segment) under
// one data directory, described by a versioned manifest persisted as atomic
// JSON. It turns the executor from a scanner of generated rows into a
// scanner of ingested ones — plan.RunProgram resolves scan inputs by table
// name through a Catalog, opening snapshot handles whose reads flow through
// the same Spill/BufferPool substrate and charge the same InitCom/UnitTr
// events as generated inputs, so the PR 5 determinism contract (digest,
// ledger, virtual clock identical across worker counts) holds unchanged for
// durable scans.
//
// Ingest is batch-oriented: Append key-sorts each batch on the declared
// sort key (stable, so pre-sorted loads keep their order), buffers rows in
// memory, and flushes whole segments once the buffer reaches the flush
// threshold; Close flushes the remainder. Rows buffered but not yet flushed
// are volatile across a crash — a graceful shutdown (Catalog.Close, which
// ocasd performs on SIGTERM) makes everything durable.
package catalog

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"

	"ocas/internal/storage"
)

const (
	manifestName    = "manifest.json"
	manifestVersion = 1

	// DefaultFlushRows is the buffered-row threshold at which ingest cuts a
	// segment.
	DefaultFlushRows = 64 << 10

	// MaxColumns bounds a table schema.
	MaxColumns = 32
)

var nameRE = regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9_-]{0,63}$`)

// Column is one schema column. The only supported type is "int32" — the
// executor's universal cell type.
type Column struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// Schema declares a table's columns and its sort key: indices into Columns,
// most significant first. Ingest keeps every flushed segment sorted on the
// key (stable sort, so equal-key rows keep arrival order).
type Schema struct {
	Columns []Column `json:"columns"`
	Key     []int    `json:"key,omitempty"`
}

// Arity returns the number of columns.
func (s Schema) Arity() int { return len(s.Columns) }

// Validate checks column count, names, types and key indices.
func (s Schema) Validate() error {
	if len(s.Columns) == 0 || len(s.Columns) > MaxColumns {
		return fmt.Errorf("catalog: schema must have 1..%d columns, got %d", MaxColumns, len(s.Columns))
	}
	seen := map[string]bool{}
	for i, c := range s.Columns {
		if !nameRE.MatchString(c.Name) {
			return fmt.Errorf("catalog: column %d has invalid name %q", i, c.Name)
		}
		if seen[c.Name] {
			return fmt.Errorf("catalog: duplicate column name %q", c.Name)
		}
		seen[c.Name] = true
		if c.Type != "" && c.Type != "int32" {
			return fmt.Errorf("catalog: column %q has unsupported type %q (only int32)", c.Name, c.Type)
		}
	}
	keySeen := map[int]bool{}
	for _, k := range s.Key {
		if k < 0 || k >= len(s.Columns) {
			return fmt.Errorf("catalog: key column index %d out of range", k)
		}
		if keySeen[k] {
			return fmt.Errorf("catalog: duplicate key column index %d", k)
		}
		keySeen[k] = true
	}
	return nil
}

// SegmentMeta describes one durable segment file of a table.
type SegmentMeta struct {
	// File is the segment's file name, relative to the catalog directory.
	File string `json:"file"`
	Rows int64  `json:"rows"`
	// MinKey/MaxKey bound the first key column's values in this segment
	// (zero for keyless tables) — the sorted-order metadata a future range
	// pruner reads.
	MinKey int32 `json:"minKey"`
	MaxKey int32 `json:"maxKey"`
}

// TableMeta is a table's durable description in the manifest.
type TableMeta struct {
	Name     string        `json:"name"`
	Schema   Schema        `json:"schema"`
	Segments []SegmentMeta `json:"segments"`
	// Seq numbers the next segment file (monotonic, never reused).
	Seq int64 `json:"seq"`
	// Version bumps on every mutation of this table (create, ingest batch,
	// flush).
	Version int64 `json:"version"`
}

type manifest struct {
	Version int                   `json:"version"`
	Rev     int64                 `json:"rev"`
	Tables  map[string]*TableMeta `json:"tables"`
}

// Options configures a Catalog.
type Options struct {
	// FlushRows is the buffered-row threshold per table at which ingest
	// flushes a segment (<= 0: DefaultFlushRows).
	FlushRows int64
	// ChunkRows is the columnar chunk size of written segments (<= 0:
	// storage.DefaultChunkRows).
	ChunkRows int64
	// Mmap maps segment files read-only instead of using file reads, on
	// platforms that support it.
	Mmap bool
}

// Stats is a counters snapshot for /stats.
type Stats struct {
	Tables         int   `json:"tables"`
	Rows           int64 `json:"rows"` // durable + buffered
	Segments       int   `json:"segments"`
	BufferedRows   int64 `json:"bufferedRows"`
	IngestedRows   int64 `json:"ingestedRows"`   // since open
	SegmentFlushes int64 `json:"segmentFlushes"` // since open
	Rev            int64 `json:"rev"`
}

// TableInfo is one table's listing entry.
type TableInfo struct {
	Name         string `json:"name"`
	Schema       Schema `json:"schema"`
	Rows         int64  `json:"rows"` // durable + buffered
	Segments     int    `json:"segments"`
	BufferedRows int64  `json:"bufferedRows"`
	Version      int64  `json:"version"`
}

// Catalog is the set of durable tables under one data directory. All
// methods are safe for concurrent use; mutations serialize on one mutex and
// persist the manifest atomically (write-temp + rename) before returning.
type Catalog struct {
	dir  string
	opts Options

	mu       sync.Mutex
	man      manifest
	buf      map[string][]int32 // unflushed row-major rows per table
	ingested int64
	flushes  int64
	closed   bool
}

// Open loads (or initializes) the catalog rooted at dir, creating the
// directory when missing. A missing manifest is an empty catalog, not an
// error.
func Open(dir string, opts Options) (*Catalog, error) {
	if opts.FlushRows <= 0 {
		opts.FlushRows = DefaultFlushRows
	}
	if opts.ChunkRows <= 0 {
		opts.ChunkRows = storage.DefaultChunkRows
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	c := &Catalog{
		dir:  dir,
		opts: opts,
		man:  manifest{Version: manifestVersion, Tables: map[string]*TableMeta{}},
		buf:  map[string][]int32{},
	}
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	switch {
	case os.IsNotExist(err):
		return c, nil
	case err != nil:
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("catalog: corrupt manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("catalog: manifest version %d unsupported (want %d)", m.Version, manifestVersion)
	}
	if m.Tables == nil {
		m.Tables = map[string]*TableMeta{}
	}
	c.man = m
	return c, nil
}

// Dir returns the catalog's data directory.
func (c *Catalog) Dir() string { return c.dir }

// saveLocked persists the manifest atomically: marshal, write to a temp
// file, rename over the live one (the plancache persistence idiom).
func (c *Catalog) saveLocked() error {
	c.man.Rev++
	data, err := json.MarshalIndent(&c.man, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(c.dir, manifestName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Create registers a new empty table. The schema must validate and the name
// must be fresh.
func (c *Catalog) Create(name string, schema Schema) error {
	if !nameRE.MatchString(name) {
		return fmt.Errorf("catalog: invalid table name %q", name)
	}
	if err := schema.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("catalog: closed")
	}
	if _, ok := c.man.Tables[name]; ok {
		return fmt.Errorf("catalog: table %q already exists", name)
	}
	c.man.Tables[name] = &TableMeta{Name: name, Schema: schema, Version: 1}
	return c.saveLocked()
}

// Drop removes a table: its manifest entry, buffered rows, and segment
// files. Handles opened before the drop keep reading their snapshot (open
// file descriptors survive the unlink on unix).
func (c *Catalog) Drop(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("catalog: closed")
	}
	t, ok := c.man.Tables[name]
	if !ok {
		return fmt.Errorf("catalog: table %q does not exist", name)
	}
	delete(c.man.Tables, name)
	delete(c.buf, name)
	if err := c.saveLocked(); err != nil {
		return err
	}
	for _, seg := range t.Segments {
		os.Remove(filepath.Join(c.dir, seg.File))
	}
	return nil
}

// List returns every table's info, sorted by name.
func (c *Catalog) List() []TableInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]TableInfo, 0, len(c.man.Tables))
	for name := range c.man.Tables {
		out = append(out, c.infoLocked(name))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Info returns one table's info.
func (c *Catalog) Info(name string) (TableInfo, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.man.Tables[name]; !ok {
		return TableInfo{}, false
	}
	return c.infoLocked(name), true
}

func (c *Catalog) infoLocked(name string) TableInfo {
	t := c.man.Tables[name]
	info := TableInfo{
		Name:     t.Name,
		Schema:   t.Schema,
		Segments: len(t.Segments),
		Version:  t.Version,
	}
	for _, seg := range t.Segments {
		info.Rows += seg.Rows
	}
	info.BufferedRows = int64(len(c.buf[name])) / int64(t.Schema.Arity())
	info.Rows += info.BufferedRows
	return info
}

// Append ingests a batch of rows (row-major flat int32 values, a multiple
// of the table's arity). The batch is stable-sorted on the declared key,
// appended to the table's in-memory buffer, and any full flush thresholds
// are cut into durable segments before Append returns. It reports the new
// total row count.
func (c *Catalog) Append(name string, rows []int32) (total int64, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, fmt.Errorf("catalog: closed")
	}
	t, ok := c.man.Tables[name]
	if !ok {
		return 0, fmt.Errorf("catalog: table %q does not exist", name)
	}
	arity := t.Schema.Arity()
	if len(rows)%arity != 0 {
		return 0, fmt.Errorf("catalog: batch of %d values is not a multiple of arity %d", len(rows), arity)
	}
	n := int64(len(rows) / arity)
	if n > 0 {
		batch := append([]int32(nil), rows...)
		sortRows(batch, arity, t.Schema.Key)
		c.buf[name] = append(c.buf[name], batch...)
		c.ingested += n
		t.Version++
		for int64(len(c.buf[name]))/int64(arity) >= c.opts.FlushRows {
			if err := c.flushLocked(t, c.opts.FlushRows); err != nil {
				return 0, err
			}
		}
		if err := c.saveLocked(); err != nil {
			return 0, err
		}
	}
	return c.infoLocked(name).Rows, nil
}

// Flush forces the table's buffered rows into a durable segment.
func (c *Catalog) Flush(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("catalog: closed")
	}
	t, ok := c.man.Tables[name]
	if !ok {
		return fmt.Errorf("catalog: table %q does not exist", name)
	}
	if len(c.buf[name]) == 0 {
		return nil
	}
	rows := int64(len(c.buf[name])) / int64(t.Schema.Arity())
	if err := c.flushLocked(t, rows); err != nil {
		return err
	}
	return c.saveLocked()
}

// flushLocked cuts the first rows buffered rows of t into a segment file.
// The flushed slice is stable-sorted on the key (concatenated sorted
// batches flatten into one sorted run), so every segment is a sorted run
// with honest MinKey/MaxKey bounds.
func (c *Catalog) flushLocked(t *TableMeta, rows int64) error {
	arity := t.Schema.Arity()
	vals := rows * int64(arity)
	flat := c.buf[t.Name][:vals]
	sortRows(flat, arity, t.Schema.Key)

	file := fmt.Sprintf("%s-%06d.seg", t.Name, t.Seq)
	if err := storage.WriteSegment(filepath.Join(c.dir, file), arity, c.opts.ChunkRows, flat); err != nil {
		return err
	}
	meta := SegmentMeta{File: file, Rows: rows}
	if len(t.Schema.Key) > 0 && rows > 0 {
		k := t.Schema.Key[0]
		meta.MinKey = flat[k]
		meta.MaxKey = flat[(rows-1)*int64(arity)+int64(k)]
	}
	t.Segments = append(t.Segments, meta)
	t.Seq++
	t.Version++
	c.flushes++
	rest := c.buf[t.Name][vals:]
	c.buf[t.Name] = append([]int32(nil), rest...)
	if len(c.buf[t.Name]) == 0 {
		delete(c.buf, t.Name)
	}
	return nil
}

// Close flushes every table's buffered rows into segments and persists the
// manifest. The catalog rejects mutations afterwards.
func (c *Catalog) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	var firstErr error
	for name, buf := range c.buf {
		t, ok := c.man.Tables[name]
		if !ok || len(buf) == 0 {
			continue
		}
		rows := int64(len(buf)) / int64(t.Schema.Arity())
		if err := c.flushLocked(t, rows); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := c.saveLocked(); err != nil && firstErr == nil {
		firstErr = err
	}
	c.closed = true
	return firstErr
}

// Stats returns the counters snapshot.
func (c *Catalog) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		Tables:         len(c.man.Tables),
		IngestedRows:   c.ingested,
		SegmentFlushes: c.flushes,
		Rev:            c.man.Rev,
	}
	for name, t := range c.man.Tables {
		s.Segments += len(t.Segments)
		for _, seg := range t.Segments {
			s.Rows += seg.Rows
		}
		b := int64(len(c.buf[name])) / int64(t.Schema.Arity())
		s.BufferedRows += b
		s.Rows += b
	}
	return s
}

// sortRows stable-sorts flat row-major rows on the key column indices.
// Stable ordering means a batch already sorted on the key is untouched —
// the property the ingest differential relies on to reproduce generated
// row order exactly.
func sortRows(flat []int32, arity int, key []int) {
	if len(key) == 0 || len(flat) == 0 {
		return
	}
	n := len(flat) / arity
	rows := make([][]int32, n)
	for i := range rows {
		rows[i] = flat[i*arity : (i+1)*arity]
	}
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range key {
			if rows[i][k] != rows[j][k] {
				return rows[i][k] < rows[j][k]
			}
		}
		return false
	})
	sorted := make([]int32, 0, len(flat))
	for _, r := range rows {
		sorted = append(sorted, r...)
	}
	copy(flat, sorted)
}
