package cost

import (
	"math"
	"testing"

	"ocas/internal/memory"
	"ocas/internal/ocal"
	sym "ocas/internal/symbolic"
)

func relType() ocal.Type { return ocal.TList(ocal.TTuple(ocal.TInt, ocal.TInt)) }

func joinPlacement(output string) Placement {
	return Placement{
		InputLoc:  map[string]string{"R": "hdd", "S": "hdd"},
		InputType: map[string]ocal.Type{"R": relType(), "S": relType()},
		InputCard: map[string]sym.Expr{"R": sym.V("x"), "S": sym.V("y")},
		Output:    output,
	}
}

func naiveJoin() ocal.Expr {
	cond := ocal.Prim{Op: ocal.OpEq, Args: []ocal.Expr{
		ocal.Proj{E: ocal.Var{Name: "x"}, I: 1}, ocal.Proj{E: ocal.Var{Name: "y"}, I: 1}}}
	body := ocal.If{Cond: cond,
		Then: ocal.Single{E: ocal.Tup{Elems: []ocal.Expr{ocal.Var{Name: "x"}, ocal.Var{Name: "y"}}}},
		Else: ocal.Empty{}}
	return ocal.For{X: "x", Src: ocal.Var{Name: "R"},
		Body: ocal.For{X: "y", Src: ocal.Var{Name: "S"}, Body: body}}
}

func blockedJoin() ocal.Expr {
	cond := ocal.Prim{Op: ocal.OpEq, Args: []ocal.Expr{
		ocal.Proj{E: ocal.Var{Name: "x"}, I: 1}, ocal.Proj{E: ocal.Var{Name: "y"}, I: 1}}}
	body := ocal.If{Cond: cond,
		Then: ocal.Single{E: ocal.Tup{Elems: []ocal.Expr{ocal.Var{Name: "x"}, ocal.Var{Name: "y"}}}},
		Else: ocal.Empty{}}
	return ocal.For{X: "xB", K: ocal.SymP("k1"), Src: ocal.Var{Name: "R"},
		Body: ocal.For{X: "yB", K: ocal.SymP("k2"), Src: ocal.Var{Name: "S"},
			Body: ocal.For{X: "x", Src: ocal.Var{Name: "xB"},
				Body: ocal.For{X: "y", Src: ocal.Var{Name: "yB"}, Body: body}}}}
}

func evalSecs(t *testing.T, res *Result, env sym.Env) float64 {
	t.Helper()
	v := res.Seconds.Eval(env)
	if math.IsNaN(v) {
		t.Fatalf("cost formula has unbound variables: %s (free: %v)",
			res.Seconds, sym.FreeVars(res.Seconds))
	}
	return v
}

func TestNaiveJoinChargesPerTuple(t *testing.T) {
	h := memory.HDDRAM(32 * memory.MiB)
	res, err := Estimate(h, joinPlacement(""), naiveJoin())
	if err != nil {
		t.Fatal(err)
	}
	e := Edge{From: "hdd", To: "ram"}
	inits := res.Events.Init(e)
	if inits == nil {
		t.Fatal("no InitCom events on hdd->ram")
	}
	// One seek per tuple of R plus one per tuple of S per iteration of R:
	// x + x*y.
	got := inits.Eval(sym.Env{"x": 100, "y": 50})
	want := 100.0 + 100*50
	if got != want {
		t.Errorf("naive join seeks = %v want %v (formula %s)", got, want, inits)
	}
	bytes := res.Events.Bytes(e).Eval(sym.Env{"x": 100, "y": 50})
	// R read once (8 bytes/tuple), S read x times.
	wantBytes := 100*8.0 + 100*50*8.0
	if bytes != wantBytes {
		t.Errorf("bytes = %v want %v", bytes, wantBytes)
	}
}

func TestBlockedJoinReducesSeeksKFold(t *testing.T) {
	h := memory.HDDRAM(32 * memory.MiB)
	res, err := Estimate(h, joinPlacement(""), blockedJoin())
	if err != nil {
		t.Fatal(err)
	}
	e := Edge{From: "hdd", To: "ram"}
	env := sym.Env{"x": 1000, "y": 1000, "k1": 100, "k2": 100}
	inits := res.Events.Init(e).Eval(env)
	// x/k1 seeks for R + (x/k1)*(y/k2) seeks for S = 10 + 100.
	if inits != 110 {
		t.Errorf("blocked join seeks = %v want 110 (%s)", inits, res.Events.Init(e))
	}
	// Bytes: R once + S once per R-block: 1000*8 + 10*1000*8.
	bytes := res.Events.Bytes(e).Eval(env)
	if bytes != 1000*8+10*1000*8 {
		t.Errorf("bytes = %v", bytes)
	}
	// The estimate must strictly improve on the naive program.
	naive, err := Estimate(h, joinPlacement(""), naiveJoin())
	if err != nil {
		t.Fatal(err)
	}
	nv := evalSecs(t, naive, env)
	bv := evalSecs(t, res, env)
	if bv >= nv {
		t.Errorf("blocked (%v s) should beat naive (%v s)", bv, nv)
	}
}

func TestResidencyConstraintEmitted(t *testing.T) {
	h := memory.HDDRAM(32 * memory.MiB)
	res, err := Estimate(h, joinPlacement(""), blockedJoin())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range res.Constraints {
		if c.Why == "resident data fits ram (main phase)" {
			found = true
			// k1 and k2 blocks (8 bytes each) must fit in RAM.
			lhs := c.LHS.Eval(sym.Env{"k1": 1000, "k2": 1000})
			if lhs != 8000+8000 {
				t.Errorf("residency LHS = %v want 16000 (%s)", lhs, c.LHS)
			}
		}
	}
	if !found {
		t.Fatalf("no RAM residency constraint in %v", res.Constraints)
	}
}

func TestWriteOutChargesDownEdge(t *testing.T) {
	h := memory.HDDRAM(32 * memory.MiB)
	res, err := Estimate(h, joinPlacement("hdd"), naiveJoin())
	if err != nil {
		t.Fatal(err)
	}
	e := Edge{From: "ram", To: "hdd"}
	if res.Events.Bytes(e) == nil {
		t.Fatal("write-out must charge ram->hdd bytes")
	}
	env := sym.Env{"x": 10, "y": 10}
	// Worst case output: x*y tuples of 16 bytes.
	if got := res.Events.Bytes(e).Eval(env); got != 100*16 {
		t.Errorf("output bytes = %v want 1600 (%s)", got, res.Events.Bytes(e))
	}
	// Unbuffered output: one initiation per output tuple.
	if got := res.Events.Init(e).Eval(env); got != 100 {
		t.Errorf("output inits = %v want 100", got)
	}
}

func TestWriteToOtherDeviceVsSame(t *testing.T) {
	// Writing to a second disk must be estimated cheaper than writing to
	// the input disk once seq-ac applies to the read side.
	two := memory.TwoHDD(32 * memory.MiB)
	progSeq := ocal.For{X: "xB", K: ocal.SymP("k1"), Src: ocal.Var{Name: "R"},
		Seq:  &ocal.SeqAnnot{From: "hdd", To: "ram"},
		OutK: ocal.SymP("ko"),
		Body: ocal.For{X: "x", Src: ocal.Var{Name: "xB"},
			Body: ocal.Single{E: ocal.Var{Name: "x"}}}}
	place := Placement{
		InputLoc:  map[string]string{"R": "hdd"},
		InputType: map[string]ocal.Type{"R": relType()},
		InputCard: map[string]sym.Expr{"R": sym.V("x")},
	}
	pSame := place
	pSame.Output = "hdd"
	pOther := place
	pOther.Output = "hdd2"
	rSame, err := Estimate(two, pSame, progSeq)
	if err != nil {
		t.Fatal(err)
	}
	rOther, err := Estimate(two, pOther, progSeq)
	if err != nil {
		t.Fatal(err)
	}
	env := sym.Env{"x": 1e6, "k1": 1000, "ko": 1000}
	// Same total transfer, different devices; with identical block sizes
	// the two estimates only differ via the edges used. Both should be
	// finite and positive; the "other disk" variant is never worse.
	sSame, sOther := evalSecs(t, rSame, env), evalSecs(t, rOther, env)
	if sOther > sSame {
		t.Errorf("other-disk (%v) should not exceed same-disk (%v)", sOther, sSame)
	}
}

func TestSeqACReducesInitCom(t *testing.T) {
	h := memory.HDDRAM(32 * memory.MiB)
	mk := func(seq *ocal.SeqAnnot) ocal.Expr {
		return ocal.For{X: "xB", K: ocal.SymP("k1"), Src: ocal.Var{Name: "R"}, Seq: seq,
			Body: ocal.For{X: "x", Src: ocal.Var{Name: "xB"},
				Body: ocal.Single{E: ocal.Var{Name: "x"}}}}
	}
	place := Placement{
		InputLoc:  map[string]string{"R": "hdd"},
		InputType: map[string]ocal.Type{"R": relType()},
		InputCard: map[string]sym.Expr{"R": sym.V("x")},
	}
	plain, err := Estimate(h, place, mk(nil))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Estimate(h, place, mk(&ocal.SeqAnnot{From: "hdd", To: "ram"}))
	if err != nil {
		t.Fatal(err)
	}
	e := Edge{From: "hdd", To: "ram"}
	env := sym.Env{"x": 1e6, "k1": 128}
	ip := plain.Events.Init(e).Eval(env)
	is := seq.Events.Init(e).Eval(env)
	if is >= ip {
		t.Errorf("seq-ac should reduce InitCom: %v vs %v", is, ip)
	}
	// With no maxSeq limits on HDD/RAM, a sequential scan is one seek.
	if is != 1 {
		t.Errorf("seq-ac inits = %v want 1", is)
	}
}

func TestInsertionSortClosedForm(t *testing.T) {
	// foldL([], unfoldR(mrg))(R): cost must contain the x(x+1)/2 shape —
	// quadratic growth of transferred bytes (Section 7.2).
	prog := ocal.App{Fn: ocal.FoldL{Init: ocal.Empty{}, Fn: ocal.UnfoldR{Fn: ocal.Mrg{}}},
		Arg: ocal.Var{Name: "R"}}
	place := Placement{
		InputLoc:  map[string]string{"R": "hdd"},
		InputType: map[string]ocal.Type{"R": ocal.TList(ocal.TList(ocal.TInt))},
		InputCard: map[string]sym.Expr{"R": sym.V("x")},
	}
	h := memory.HDDRAM(32 * memory.MiB)
	res, err := Estimate(h, place, prog)
	if err != nil {
		t.Fatal(err)
	}
	up := Edge{From: "hdd", To: "ram"}
	down := Edge{From: "ram", To: "hdd"}
	// Bytes moved down across all iterations = 4 * sum_{i=0}^{x-1}(i+1)
	// = 4 * x(x+1)/2 (4-byte atoms).
	gotDown := res.Events.Bytes(down).Eval(sym.Env{"x": 100})
	wantDown := 4.0 * 100 * 101 / 2
	if gotDown != wantDown {
		t.Errorf("down bytes = %v want %v (%s)", gotDown, wantDown, res.Events.Bytes(down))
	}
	// One read initiation per iteration plus the input stream's x.
	gotUpInit := res.Events.Init(up).Eval(sym.Env{"x": 100})
	if gotUpInit != 200 {
		t.Errorf("up inits = %v want 200 (%s)", gotUpInit, res.Events.Init(up))
	}
	// Element-wise write initiations: sum (i+1) = x(x+1)/2.
	gotDownInit := res.Events.Init(down).Eval(sym.Env{"x": 100})
	if gotDownInit != 100*101/2 {
		t.Errorf("down inits = %v want %v", gotDownInit, 100*101/2)
	}
}

func TestExternalSortCostShape(t *testing.T) {
	// treeFold[2^k]([], unfoldR[bin](funcPow[k](mrg))) with output buffer
	// bout: levels = ceil(log2 x / k); transfers per level = all data.
	h := memory.HDDRAM(32 * memory.MiB)
	place := Placement{
		InputLoc:  map[string]string{"R": "hdd"},
		InputType: map[string]ocal.Type{"R": ocal.TList(ocal.TList(ocal.TInt))},
		InputCard: map[string]sym.Expr{"R": sym.V("x")},
	}
	mk := func(k int) ocal.Expr {
		return ocal.App{
			Fn: ocal.TreeFold{K: ocal.Lit(int64(1 << k)), Init: ocal.Empty{},
				OutK: ocal.SymP("bout"),
				Fn:   ocal.UnfoldR{Fn: ocal.FuncPow{K: k, Fn: ocal.Mrg{}}, K: ocal.SymP("bin")}},
			Arg: ocal.Var{Name: "R"},
		}
	}
	res2, err := Estimate(h, place, mk(1))
	if err != nil {
		t.Fatal(err)
	}
	res8, err := Estimate(h, place, mk(3))
	if err != nil {
		t.Fatal(err)
	}
	env := sym.Env{"x": 1 << 20, "bin": 4096, "bout": 4096}
	up := Edge{From: "hdd", To: "ram"}
	b2 := res2.Events.Bytes(up).Eval(env)
	b8 := res8.Events.Bytes(up).Eval(env)
	// 8-way sort does 20/3 -> 7 passes vs 20 passes for 2-way.
	if !(b8 < b2) {
		t.Errorf("8-way should move fewer bytes: %v vs %v", b8, b2)
	}
	ratio := b2 / b8
	if ratio < 2.5 || ratio > 3.1 {
		t.Errorf("pass ratio = %v want ~20/7", ratio)
	}
	// The fold-based insertion sort must be asymptotically worse: compare
	// at two sizes and check the growth exponent.
	naive := ocal.App{Fn: ocal.FoldL{Init: ocal.Empty{}, Fn: ocal.UnfoldR{Fn: ocal.Mrg{}}},
		Arg: ocal.Var{Name: "R"}}
	resN, err := Estimate(h, place, naive)
	if err != nil {
		t.Fatal(err)
	}
	growth := func(r *Result) float64 {
		a := evalSecs(t, r, sym.Env{"x": 1 << 12, "bin": 4096, "bout": 4096})
		b := evalSecs(t, r, sym.Env{"x": 1 << 16, "bin": 4096, "bout": 4096})
		return math.Log(b/a) / math.Log(16)
	}
	gN, gS := growth(resN), growth(res8)
	if gN < 1.8 {
		t.Errorf("insertion sort cost should grow ~quadratically, exponent %v", gN)
	}
	if gS > 1.4 {
		t.Errorf("external sort cost should grow ~n log n, exponent %v", gS)
	}
}

func TestAggregationIsCheap(t *testing.T) {
	// foldL(0, +) over a blocked scan: cost ~ one pass, no shuttle.
	sum := ocal.App{
		Fn: ocal.FoldL{Init: ocal.IntLit{V: 0},
			Fn: ocal.Lam{Params: []string{"a", "v"},
				Body: ocal.Prim{Op: ocal.OpAdd, Args: []ocal.Expr{ocal.Var{Name: "a"}, ocal.Proj{E: ocal.Var{Name: "v"}, I: 2}}}}},
		Arg: ocal.For{X: "xB", K: ocal.SymP("k1"), Src: ocal.Var{Name: "R"},
			Body: ocal.Var{Name: "xB"}},
	}
	h := memory.HDDRAM(32 * memory.MiB)
	res, err := Estimate(h, joinPlacement(""), sum)
	if err != nil {
		t.Fatal(err)
	}
	down := Edge{From: "ram", To: "hdd"}
	if res.Events.Bytes(down) != nil {
		if v := res.Events.Bytes(down).Eval(sym.Env{"x": 1000, "k1": 100}); v != 0 {
			t.Errorf("aggregation should not write back, got %v bytes", v)
		}
	}
	up := Edge{From: "hdd", To: "ram"}
	if got := res.Events.Bytes(up).Eval(sym.Env{"x": 1000, "y": 1, "k1": 100}); got != 8000 {
		t.Errorf("aggregation reads %v bytes want 8000", got)
	}
}

func TestOrderInputsTakesMin(t *testing.T) {
	h := memory.HDDRAM(32 * memory.MiB)
	inner := ocal.Lam{Params: []string{"R1", "S1"}, Body: ocal.For{
		X: "xB", K: ocal.SymP("k1"), Src: ocal.Var{Name: "R1"},
		Body: ocal.For{X: "yB", K: ocal.SymP("k2"), Src: ocal.Var{Name: "S1"},
			Body: ocal.For{X: "x", Src: ocal.Var{Name: "xB"},
				Body: ocal.For{X: "y", Src: ocal.Var{Name: "yB"},
					Body: ocal.Single{E: ocal.Tup{Elems: []ocal.Expr{ocal.Var{Name: "x"}, ocal.Var{Name: "y"}}}}}}}}}
	lenOf := func(v string) ocal.Expr {
		return ocal.Prim{Op: ocal.OpLength, Args: []ocal.Expr{ocal.Var{Name: v}}}
	}
	wrapped := ocal.App{Fn: inner, Arg: ocal.If{
		Cond: ocal.Prim{Op: ocal.OpLe, Args: []ocal.Expr{lenOf("R"), lenOf("S")}},
		Then: ocal.Tup{Elems: []ocal.Expr{ocal.Var{Name: "R"}, ocal.Var{Name: "S"}}},
		Else: ocal.Tup{Elems: []ocal.Expr{ocal.Var{Name: "S"}, ocal.Var{Name: "R"}}},
	}}
	res, err := Estimate(h, joinPlacement(""), wrapped)
	if err != nil {
		t.Fatal(err)
	}
	// With x >> y the min must match costing with the small relation outer,
	// i.e. it must beat the fixed ordering R-outer.
	fixed := ocal.App{Fn: inner, Arg: ocal.Tup{Elems: []ocal.Expr{ocal.Var{Name: "R"}, ocal.Var{Name: "S"}}}}
	resFixed, err := Estimate(h, joinPlacement(""), fixed)
	if err != nil {
		t.Fatal(err)
	}
	env := sym.Env{"x": 1e6, "y": 1e3, "k1": 512, "k2": 512}
	if evalSecs(t, res, env) > evalSecs(t, resFixed, env) {
		t.Errorf("order-inputs min (%v) must not exceed fixed ordering (%v)",
			evalSecs(t, res, env), evalSecs(t, resFixed, env))
	}
	if evalSecs(t, res, env) >= evalSecs(t, resFixed, env) {
		t.Errorf("with skewed sizes the wrapper should strictly win: %v vs %v",
			evalSecs(t, res, env), evalSecs(t, resFixed, env))
	}
}

func TestHashPartitionedJoinCheaperThanBNLWhenRAMSmall(t *testing.T) {
	h := memory.HDDRAM(1 * memory.MiB)
	join := ocal.Lam{Params: []string{"p1", "p2"}, Body: ocal.For{
		X: "xB", K: ocal.SymP("k3"), Src: ocal.Var{Name: "p1"},
		Body: ocal.For{X: "yB", K: ocal.SymP("k4"), Src: ocal.Var{Name: "p2"},
			Body: ocal.For{X: "x", Src: ocal.Var{Name: "xB"},
				Body: ocal.For{X: "y", Src: ocal.Var{Name: "yB"},
					Body: ocal.If{
						Cond: ocal.Prim{Op: ocal.OpEq, Args: []ocal.Expr{
							ocal.Proj{E: ocal.Var{Name: "x"}, I: 1}, ocal.Proj{E: ocal.Var{Name: "y"}, I: 1}}},
						Then: ocal.Single{E: ocal.Tup{Elems: []ocal.Expr{ocal.Var{Name: "x"}, ocal.Var{Name: "y"}}}},
						Else: ocal.Empty{}}}}}}}
	hashed := ocal.App{
		Fn: ocal.FlatMap{Fn: join},
		Arg: ocal.App{Fn: ocal.ZipLists{N: 2}, Arg: ocal.Tup{Elems: []ocal.Expr{
			ocal.App{Fn: ocal.PartitionF{S: ocal.SymP("s")}, Arg: ocal.Var{Name: "R"}},
			ocal.App{Fn: ocal.PartitionF{S: ocal.SymP("s")}, Arg: ocal.Var{Name: "S"}},
		}}},
	}
	resH, err := Estimate(h, joinPlacement(""), hashed)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := Estimate(h, joinPlacement(""), blockedJoin())
	if err != nil {
		t.Fatal(err)
	}
	// 1 MiB RAM, 64 MiB relations: BNL re-reads S many times; GRACE reads
	// everything twice. Block sizes constrained by RAM (128K tuples each).
	envB := sym.Env{"x": 8e6, "y": 8e6, "k1": 60000, "k2": 60000}
	envH := sym.Env{"x": 8e6, "y": 8e6, "s": 128, "k3": 60000, "k4": 60000}
	hv := evalSecs(t, resH, envH)
	bv := evalSecs(t, resB, envB)
	if hv >= bv {
		t.Errorf("GRACE (%v s) should beat BNL (%v s) when RAM is scarce", hv, bv)
	}
}

func TestEstimateErrors(t *testing.T) {
	h := memory.HDDRAM(32 * memory.MiB)
	// Missing type info.
	_, err := Estimate(h, Placement{
		InputLoc:  map[string]string{"R": "hdd"},
		InputCard: map[string]sym.Expr{"R": sym.V("x")},
	}, naiveJoin())
	if err == nil {
		t.Error("expected error for missing input type")
	}
	// Unbound variable.
	_, err = Estimate(h, Placement{}, ocal.Var{Name: "Z"})
	if err == nil {
		t.Error("expected error for unbound input")
	}
	// Bare function.
	_, err = Estimate(h, Placement{}, ocal.Mrg{})
	if err == nil {
		t.Error("expected error for bare definition")
	}
}
