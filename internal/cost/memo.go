package cost

import (
	"sync"
	"sync/atomic"

	"ocas/internal/memory"
	"ocas/internal/ocal"
)

// Memo caches Estimate results keyed by interned program identity. The
// synthesizer's beam search costs every frontier it ranks and the screening
// pass then costs every discovered program; both ask about the same interned
// nodes, so the second asker gets the first's Result instead of re-walking
// the program and re-deriving its cost formula. Failed estimates are cached
// too — a program the estimator rejects once is rejected for the whole
// synthesis.
//
// A Memo's lifetime is one synthesis run (core.Synthesizer creates one per
// call): the hierarchy and placement are fixed for that long, which is what
// makes the interned node a complete key.
type Memo struct {
	H *memory.Hierarchy
	P Placement

	mu   sync.Mutex
	m    map[uint64]memoEntry
	hits atomic.Uint64
}

type memoEntry struct {
	res *Result
	err error
}

// NewMemo returns an empty memo for one (hierarchy, placement) pair.
func NewMemo(h *memory.Hierarchy, p Placement) *Memo {
	return &Memo{H: h, P: p, m: map[uint64]memoEntry{}}
}

// Estimate costs prog, using the interned node only as the cache key and
// serving repeats from the cache. The caller's expression — not n.Expr() —
// is what gets costed: the interner's representative for a print-equivalence
// class is whichever sibling a worker interned first (scheduling-dependent),
// and siblings can differ in print-invisible but cost-relevant attributes
// (cardinality hints). The search only ever costs the deterministic dedup
// winner of each class, so caching that program's estimate keeps results
// independent of worker count.
func (m *Memo) Estimate(n *ocal.INode, prog ocal.Expr) (*Result, error) {
	id := n.ID()
	m.mu.Lock()
	e, ok := m.m[id]
	m.mu.Unlock()
	if ok {
		m.hits.Add(1)
		return e.res, e.err
	}
	res, err := Estimate(m.H, m.P, prog)
	m.mu.Lock()
	m.m[id] = memoEntry{res: res, err: err}
	m.mu.Unlock()
	return res, err
}

// MemoStats reports cache activity.
type MemoStats struct {
	// Entries is the number of distinct programs costed.
	Entries int
	// Hits is the number of Estimate calls served from the cache.
	Hits uint64
}

// Stats returns a snapshot of the memo's counters.
func (m *Memo) Stats() MemoStats {
	m.mu.Lock()
	n := len(m.m)
	m.mu.Unlock()
	return MemoStats{Entries: n, Hits: m.hits.Load()}
}
