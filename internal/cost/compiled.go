package cost

import (
	"math"

	sym "ocas/internal/symbolic"
)

// CompiledFormulas is a cost estimate's objective and capacity constraints
// compiled onto one evaluation-slot layout, for callers that evaluate the
// same formulas at many parameter points: the synthesizer's screening
// heuristic and the non-linear optimizer both drive their loops through
// this type, so the slot/NaN semantics cannot drift between the two. Fixed
// values (input cardinalities) are written once at compile time; SetPoint
// rewrites only the parameter slots. Not safe for concurrent use — compile
// one per goroutine.
type CompiledFormulas struct {
	seconds *sym.Program
	cons    []compiledConstraint
	slots   *sym.Slots
	vals    []float64
	params  []string
	pslot   []int
}

type compiledConstraint struct{ lhs, rhs *sym.Program }

// CompileFormulas compiles the objective and constraints over the given
// tuning parameters and fixed environment. lite skips the shared-
// subexpression analysis — right for a handful of evaluations per formula
// (screening); keep it false for optimizer-style thousands.
func CompileFormulas(seconds sym.Expr, cons []Constraint, params []string, fixed sym.Env, lite bool) *CompiledFormulas {
	compile := sym.Compile
	if lite {
		compile = sym.CompileLite
	}
	slots := sym.NewSlots()
	c := &CompiledFormulas{seconds: compile(seconds, slots), params: params}
	c.cons = make([]compiledConstraint, len(cons))
	for i, con := range cons {
		c.cons[i] = compiledConstraint{lhs: compile(con.LHS, slots), rhs: compile(con.RHS, slots)}
	}
	c.pslot = make([]int, len(params))
	for i, p := range params {
		c.pslot[i] = slots.Slot(p)
	}
	c.slots = slots
	c.vals = slots.Values()
	for k, v := range fixed {
		if i, ok := slots.Lookup(k); ok {
			c.vals[i] = v
		}
	}
	return c
}

// SetFixed rewrites the fixed-value slots for subsequent evaluations, exactly
// as if the formulas had been compiled with this environment: names without a
// slot are ignored, slots the environment does not mention keep their value.
// Template instantiation uses it to re-bind input cardinalities on formulas
// compiled once per template.
func (c *CompiledFormulas) SetFixed(fixed sym.Env) {
	for k, v := range fixed {
		if i, ok := c.slots.Lookup(k); ok {
			c.vals[i] = v
		}
	}
}

// SetPoint writes the parameter values for subsequent evaluations (params
// in the order given to CompileFormulas; a parameter also present in fixed
// wins, as it would in a merged environment).
func (c *CompiledFormulas) SetPoint(x map[string]int64) {
	for i, p := range c.params {
		c.vals[c.pslot[i]] = float64(x[p])
	}
}

// SetPointVals is SetPoint with the values given in params order — the
// allocation-free form the screening loop drives.
func (c *CompiledFormulas) SetPointVals(vals []int64) {
	for i := range c.params {
		c.vals[c.pslot[i]] = float64(vals[i])
	}
}

// Binding resolves names to value slots once (-1 when the formulas never
// reference a name), for callers that re-bind the same variables across
// many evaluations without per-call map lookups.
func (c *CompiledFormulas) Binding(names []string) []int32 {
	out := make([]int32, len(names))
	for i, n := range names {
		if s, ok := c.slots.Lookup(n); ok {
			out[i] = int32(s)
		} else {
			out[i] = -1
		}
	}
	return out
}

// SetBound writes vals (aligned with the Binding's names) through a
// precomputed Binding — exactly SetFixed, minus the lookups.
func (c *CompiledFormulas) SetBound(bind []int32, vals []float64) {
	for i, s := range bind {
		if s >= 0 {
			c.vals[s] = vals[i]
		}
	}
}

// Seconds evaluates the objective at the current point.
func (c *CompiledFormulas) Seconds() float64 { return c.seconds.Eval(c.vals) }

// AnyViolated reports whether some constraint has LHS > RHS at the current
// point, in constraint order (NaN sides compare false, exactly as the
// Expr.Eval-based check did).
func (c *CompiledFormulas) AnyViolated() bool {
	for _, con := range c.cons {
		if con.lhs.Eval(c.vals) > con.rhs.Eval(c.vals) {
			return true
		}
	}
	return false
}

// Violation sums the relative constraint violation at the current point
// ((LHS-RHS)/max(1,|RHS|) over violated constraints); NaN when any side is
// NaN, which callers treat as infeasible.
func (c *CompiledFormulas) Violation() float64 {
	var total float64
	for _, con := range c.cons {
		l, r := con.lhs.Eval(c.vals), con.rhs.Eval(c.vals)
		if math.IsNaN(l) || math.IsNaN(r) {
			return math.NaN()
		}
		if l > r {
			total += (l - r) / math.Max(1, math.Abs(r))
		}
	}
	return total
}
