// Package cost implements the automated cost estimation of Section 5:
// annotated types with symbolic cardinalities (Figure 5), the counting of
// InitCom and UnitTr events per hierarchy edge (Figure 6), seq-ac sequential
// access costing, and the residency constraints handed to the non-linear
// parameter optimizer. Costing never executes the program.
package cost

import (
	"fmt"
	"strings"

	"ocas/internal/ocal"
	sym "ocas/internal/symbolic"
)

// AType is an annotated type per Section 5.1:
//
//	α ::= [α]x | 〈α1, ..., αn〉 | c
//
// List cardinalities are symbolic arithmetic expressions so the cost of a
// program is derived once and re-evaluated for any input size or parameter
// choice.
type AType interface {
	isAType()
	String() string
}

// AList is [α]x.
type AList struct {
	Card sym.Expr
	Elem AType
}

// ATuple is 〈α1, ..., αn〉.
type ATuple []AType

// AConst is a constant size c (bytes).
type AConst struct{ Size sym.Expr }

func (AList) isAType()  {}
func (ATuple) isAType() {}
func (AConst) isAType() {}

func (a AList) String() string { return "[" + a.Elem.String() + "]^(" + a.Card.String() + ")" }
func (a ATuple) String() string {
	parts := make([]string, len(a))
	for i, e := range a {
		parts[i] = e.String()
	}
	return "<" + strings.Join(parts, ", ") + ">"
}
func (a AConst) String() string { return a.Size.String() }

// Size returns the total size in bytes of the annotated type, the paper's
// size(α) function.
func Size(a AType) sym.Expr {
	switch t := a.(type) {
	case AList:
		return sym.Mul(t.Card, Size(t.Elem))
	case ATuple:
		terms := make([]sym.Expr, len(t))
		for i, e := range t {
			terms[i] = Size(e)
		}
		return sym.Add(terms...)
	case AConst:
		return t.Size
	}
	return sym.Zero
}

// Card returns the cardinality of a list annotated type (card([α]x) = x).
func Card(a AType) (sym.Expr, error) {
	l, ok := a.(AList)
	if !ok {
		return nil, fmt.Errorf("cost: card of non-list annotated type %s", a)
	}
	return l.Card, nil
}

// Elem returns the element annotated type of a list (elem([α]x) = α).
func Elem(a AType) (AType, error) {
	l, ok := a.(AList)
	if !ok {
		return nil, fmt.Errorf("cost: elem of non-list annotated type %s", a)
	}
	return l.Elem, nil
}

// ScaleCard multiplies the outer cardinality of a list by f ("x · [b]y").
func ScaleCard(a AType, f sym.Expr) AType {
	if l, ok := a.(AList); ok {
		return AList{Card: sym.Mul(f, l.Card), Elem: l.Elem}
	}
	return a
}

// MaxT merges two annotated types pointwise, taking the worst case of the
// cardinalities and constant sizes (Figure 5's rule for if-then-else).
func MaxT(a, b AType) AType {
	switch x := a.(type) {
	case AList:
		if y, ok := b.(AList); ok {
			return AList{Card: sym.Max(x.Card, y.Card), Elem: MaxT(x.Elem, y.Elem)}
		}
	case ATuple:
		if y, ok := b.(ATuple); ok && len(x) == len(y) {
			out := make(ATuple, len(x))
			for i := range x {
				out[i] = MaxT(x[i], y[i])
			}
			return out
		}
	case AConst:
		if y, ok := b.(AConst); ok {
			return AConst{Size: sym.Max(x.Size, y.Size)}
		}
	}
	// Shapes disagree (one branch empty list vs tuple etc.): fall back to
	// whichever carries the larger worst-case size.
	if isEmptyish(a) {
		return b
	}
	return a
}

// AddT adds two annotated types: lists concatenate cardinalities (the ⊔
// rule), constants add sizes.
func AddT(a, b AType) AType {
	switch x := a.(type) {
	case AList:
		if y, ok := b.(AList); ok {
			return AList{Card: sym.Add(x.Card, y.Card), Elem: MaxT(x.Elem, y.Elem)}
		}
	case AConst:
		if y, ok := b.(AConst); ok {
			return AConst{Size: sym.Add(x.Size, y.Size)}
		}
	}
	if isEmptyish(a) {
		return b
	}
	return a
}

func isEmptyish(a AType) bool {
	switch t := a.(type) {
	case AList:
		c, ok := t.Card.(sym.Const)
		return ok && c == 0
	case AConst:
		c, ok := t.Size.(sym.Const)
		return ok && c == 0
	}
	return false
}

// FromType converts an OCAL type with a given outer cardinality to an
// annotated type: atoms get AtomBytes, nested lists get cardinality
// variables derived from the base name.
func FromType(t ocal.Type, card sym.Expr, innerCardName string) AType {
	switch x := t.(type) {
	case ocal.AtomType:
		if x.Kind == ocal.AStr {
			return AConst{Size: sym.C(16)} // nominal string payload
		}
		return AConst{Size: sym.C(float64(ocal.AtomBytes))}
	case ocal.TupleType:
		out := make(ATuple, len(x))
		for i, e := range x {
			out[i] = FromType(e, sym.One, innerCardName)
		}
		return out
	case ocal.ListType:
		inner := sym.Expr(sym.One)
		if innerCardName != "" {
			inner = sym.V(innerCardName)
		}
		return AList{Card: card, Elem: FromType(x.Elem, inner, "")}
	}
	return AConst{Size: sym.Zero}
}
