package cost

import (
	"fmt"
	"sort"
	"strings"

	"ocas/internal/memory"
	sym "ocas/internal/symbolic"
)

// Edge is a directed adjacent pair of hierarchy nodes.
type Edge struct{ From, To string }

func (e Edge) String() string { return e.From + "->" + e.To }

// Events tallies, per directed edge, the number of InitCom events and the
// number of bytes transferred (UnitTr events), as symbolic expressions over
// input cardinalities and tuning parameters. The tally is a small
// insertion-ordered slice rather than a pair of maps: a program touches a
// handful of edges, and the estimator allocates one sub-tally per loop
// construct it costs (see run.scaled), so the slice keeps both the
// allocation cost and the iteration order (hence the exact shape of the
// assembled cost formula) deterministic.
type Events struct {
	entries []eventEntry
}

type eventEntry struct {
	edge        Edge
	init, bytes sym.Expr
}

// NewEvents returns an empty tally.
func NewEvents() *Events { return &Events{} }

func (ev *Events) entry(e Edge) *eventEntry {
	for i := range ev.entries {
		if ev.entries[i].edge == e {
			return &ev.entries[i]
		}
	}
	ev.entries = append(ev.entries, eventEntry{edge: e})
	return &ev.entries[len(ev.entries)-1]
}

// Init returns the accumulated InitCom tally on an edge (nil when none).
func (ev *Events) Init(e Edge) sym.Expr {
	for i := range ev.entries {
		if ev.entries[i].edge == e {
			return ev.entries[i].init
		}
	}
	return nil
}

// Bytes returns the accumulated byte tally on an edge (nil when none).
func (ev *Events) Bytes(e Edge) sym.Expr {
	for i := range ev.entries {
		if ev.entries[i].edge == e {
			return ev.entries[i].bytes
		}
	}
	return nil
}

// AddInit accumulates InitCom events on an edge.
func (ev *Events) AddInit(e Edge, n sym.Expr) {
	ent := ev.entry(e)
	if ent.init == nil {
		ent.init = n
	} else {
		ent.init = sym.Add(ent.init, n)
	}
}

// AddBytes accumulates transferred bytes on an edge.
func (ev *Events) AddBytes(e Edge, n sym.Expr) {
	ent := ev.entry(e)
	if ent.bytes == nil {
		ent.bytes = n
	} else {
		ent.bytes = sym.Add(ent.bytes, n)
	}
}

// Merge adds all events of other into ev.
func (ev *Events) Merge(other *Events) {
	for _, ent := range other.entries {
		if ent.init != nil {
			ev.AddInit(ent.edge, ent.init)
		}
		if ent.bytes != nil {
			ev.AddBytes(ent.edge, ent.bytes)
		}
	}
}

// Scale multiplies every tally by f (used when a subcomputation repeats).
func (ev *Events) Scale(f sym.Expr) {
	for i := range ev.entries {
		if ev.entries[i].init != nil {
			ev.entries[i].init = sym.Mul(f, ev.entries[i].init)
		}
		if ev.entries[i].bytes != nil {
			ev.entries[i].bytes = sym.Mul(f, ev.entries[i].bytes)
		}
	}
}

// Seconds converts the tallies to estimated seconds using the hierarchy's
// edge weights: total = Σ init·InitCom + bytes·UnitTr.
func (ev *Events) Seconds(h *memory.Hierarchy) sym.Expr {
	var terms []sym.Expr
	for _, ent := range ev.entries {
		if ent.init == nil {
			continue
		}
		w := h.InitCom(ent.edge.From, ent.edge.To)
		if w != 0 {
			terms = append(terms, sym.Mul(sym.C(w), ent.init))
		}
	}
	for _, ent := range ev.entries {
		if ent.bytes == nil {
			continue
		}
		w := h.UnitTr(ent.edge.From, ent.edge.To)
		if w != 0 {
			terms = append(terms, sym.Mul(sym.C(w), ent.bytes))
		}
	}
	return sym.Add(terms...)
}

// EvalTotals evaluates the tally numerically under env: the total number of
// InitCom events and the total bytes transferred, summed over every edge.
// The explain report uses it to place the model's predicted event counts
// next to the simulator's measured ones.
func (ev *Events) EvalTotals(env sym.Env) (inits, bytes float64) {
	for _, ent := range ev.entries {
		if ent.init != nil {
			inits += ent.init.Eval(env)
		}
		if ent.bytes != nil {
			bytes += ent.bytes.Eval(env)
		}
	}
	return inits, bytes
}

// String renders the tallies deterministically for golden tests.
func (ev *Events) String() string {
	idx := make([]int, len(ev.entries))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool {
		return ev.entries[idx[i]].edge.String() < ev.entries[idx[j]].edge.String()
	})
	var b strings.Builder
	for _, i := range idx {
		ent := ev.entries[i]
		init, bytes := ent.init, ent.bytes
		if init == nil {
			init = sym.Zero
		}
		if bytes == nil {
			bytes = sym.Zero
		}
		fmt.Fprintf(&b, "%-14s InitCom: %-30s UnitTr bytes: %s\n", ent.edge.String(), init.String(), bytes.String())
	}
	return b.String()
}

// Constraint is LHS ≤ RHS, handed to the parameter optimizer.
type Constraint struct {
	LHS, RHS sym.Expr
	Why      string
}

func (c Constraint) String() string {
	return fmt.Sprintf("%s <= %s (%s)", c.LHS, c.RHS, c.Why)
}
