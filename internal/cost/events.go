package cost

import (
	"fmt"
	"sort"
	"strings"

	"ocas/internal/memory"
	sym "ocas/internal/symbolic"
)

// Edge is a directed adjacent pair of hierarchy nodes.
type Edge struct{ From, To string }

func (e Edge) String() string { return e.From + "->" + e.To }

// Events tallies, per directed edge, the number of InitCom events and the
// number of bytes transferred (UnitTr events), as symbolic expressions over
// input cardinalities and tuning parameters.
type Events struct {
	Init map[Edge]sym.Expr
	Byte map[Edge]sym.Expr
}

// NewEvents returns an empty tally.
func NewEvents() *Events {
	return &Events{Init: map[Edge]sym.Expr{}, Byte: map[Edge]sym.Expr{}}
}

// AddInit accumulates InitCom events on an edge.
func (ev *Events) AddInit(e Edge, n sym.Expr) {
	if cur, ok := ev.Init[e]; ok {
		ev.Init[e] = sym.Add(cur, n)
	} else {
		ev.Init[e] = n
	}
}

// AddBytes accumulates transferred bytes on an edge.
func (ev *Events) AddBytes(e Edge, n sym.Expr) {
	if cur, ok := ev.Byte[e]; ok {
		ev.Byte[e] = sym.Add(cur, n)
	} else {
		ev.Byte[e] = n
	}
}

// Merge adds all events of other into ev.
func (ev *Events) Merge(other *Events) {
	for e, n := range other.Init {
		ev.AddInit(e, n)
	}
	for e, n := range other.Byte {
		ev.AddBytes(e, n)
	}
}

// Scale multiplies every tally by f (used when a subcomputation repeats).
func (ev *Events) Scale(f sym.Expr) {
	for e, n := range ev.Init {
		ev.Init[e] = sym.Mul(f, n)
	}
	for e, n := range ev.Byte {
		ev.Byte[e] = sym.Mul(f, n)
	}
}

// Seconds converts the tallies to estimated seconds using the hierarchy's
// edge weights: total = Σ init·InitCom + bytes·UnitTr.
func (ev *Events) Seconds(h *memory.Hierarchy) sym.Expr {
	var terms []sym.Expr
	for e, n := range ev.Init {
		w := h.InitCom(e.From, e.To)
		if w != 0 {
			terms = append(terms, sym.Mul(sym.C(w), n))
		}
	}
	for e, n := range ev.Byte {
		w := h.UnitTr(e.From, e.To)
		if w != 0 {
			terms = append(terms, sym.Mul(sym.C(w), n))
		}
	}
	return sym.Add(terms...)
}

// String renders the tallies deterministically for golden tests.
func (ev *Events) String() string {
	var keys []Edge
	seen := map[Edge]bool{}
	for e := range ev.Init {
		if !seen[e] {
			seen[e] = true
			keys = append(keys, e)
		}
	}
	for e := range ev.Byte {
		if !seen[e] {
			seen[e] = true
			keys = append(keys, e)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	var b strings.Builder
	for _, e := range keys {
		init, bytes := ev.Init[e], ev.Byte[e]
		if init == nil {
			init = sym.Zero
		}
		if bytes == nil {
			bytes = sym.Zero
		}
		fmt.Fprintf(&b, "%-14s InitCom: %-30s UnitTr bytes: %s\n", e.String(), init.String(), bytes.String())
	}
	return b.String()
}

// Constraint is LHS ≤ RHS, handed to the parameter optimizer.
type Constraint struct {
	LHS, RHS sym.Expr
	Why      string
}

func (c Constraint) String() string {
	return fmt.Sprintf("%s <= %s (%s)", c.LHS, c.RHS, c.Why)
}
