package cost

import (
	"fmt"
	"math"

	"ocas/internal/ocal"
	sym "ocas/internal/symbolic"
)

// estApp dispatches function application costing to the per-definition cost
// plugins ("OCAS contains efficient generator plugins for all definitions in
// Figure 2" — each plugin has a matching cost function here).
func (r *run) estApp(t ocal.App, g *ctx) (AType, locT, error) {
	switch fn := t.Fn.(type) {
	case ocal.Lam:
		return r.applyLam(fn, t.Arg, g)
	case ocal.FlatMap:
		return r.applyFlatMap(fn, t.Arg, g)
	case ocal.FoldL:
		return r.applyFoldL(fn, t.Arg, g)
	case ocal.TreeFold:
		return r.applyTreeFold(fn, t.Arg, g)
	case ocal.UnfoldR:
		return r.applyUnfoldR(fn, t.Arg, g)
	case ocal.PartitionF:
		return r.applyPartition(fn, t.Arg, g)
	case ocal.ZipLists:
		return r.applyZipLists(fn, t.Arg, g)
	case ocal.App:
		// Curried application: cost the inner application first.
		return nil, locT{}, fmt.Errorf("cost: curried applications are not supported: %s", ocal.String(t))
	}
	return nil, locT{}, fmt.Errorf("cost: cannot cost application of %s", ocal.String(t.Fn))
}

// applyLam binds parameters without charging transfers: the body's loops and
// definitions charge for the data they actually pull (the Figure 6 λ rule's
// transfer terms materialize at the consuming constructs, avoiding double
// counting when the argument is a tuple of device-resident relations).
func (r *run) applyLam(fn ocal.Lam, arg ocal.Expr, g *ctx) (AType, locT, error) {
	argAt, argLoc, err := r.est(arg, g)
	if err != nil {
		return nil, locT{}, err
	}
	if len(fn.Params) == 1 {
		return r.est(fn.Body, g.bind(fn.Params[0], binding{at: argAt, loc: argLoc}))
	}
	tup, ok := argAt.(ATuple)
	if !ok || len(tup) != len(fn.Params) {
		return nil, locT{}, fmt.Errorf("cost: lambda expects a %d-tuple, got %s", len(fn.Params), argAt)
	}
	ng := g
	for i, p := range fn.Params {
		ng = ng.bind(p, binding{at: tup[i], loc: argLoc.at(i)})
	}
	return r.est(fn.Body, ng)
}

// applyFlatMap charges an element-granular stream of the source plus the
// body once per element ("the cost of the flatMap construct is the same as
// that of for with k set to 1").
func (r *run) applyFlatMap(fn ocal.FlatMap, arg ocal.Expr, g *ctx) (AType, locT, error) {
	argAt, argLoc, err := r.est(arg, g)
	if err != nil {
		return nil, locT{}, err
	}
	n, err := Card(argAt)
	if err != nil {
		return nil, locT{}, fmt.Errorf("cost: flatMap over non-list: %w", err)
	}
	elem, _ := Elem(argAt)
	xLoc := r.root()
	if src := argLoc.nodeOf(); src != r.root() && src != "" {
		if containsList(elem) {
			// Elements are themselves collections (e.g. hash-partition
			// buckets): they stay on the device and the body's own loops
			// charge for fetching them.
			xLoc = src
		} else {
			xLoc = r.chargeUp(src, Size(argAt), n)
		}
	}
	lam, ok := fn.Fn.(ocal.Lam)
	if !ok {
		return nil, locT{}, fmt.Errorf("cost: flatMap function must be a lambda, got %s", ocal.String(fn.Fn))
	}
	var bodyAt AType
	err = r.scaled(n, func() error {
		ng := g
		if len(lam.Params) == 1 {
			ng = ng.bind(lam.Params[0], binding{at: elem, loc: leafLoc(xLoc)})
		} else {
			tup, ok := elem.(ATuple)
			if !ok || len(tup) != len(lam.Params) {
				return fmt.Errorf("cost: flatMap lambda arity mismatch on %s", elem)
			}
			for i, p := range lam.Params {
				ng = ng.bind(p, binding{at: tup[i], loc: leafLoc(xLoc)})
			}
		}
		at, _, err := r.est(lam.Body, ng)
		bodyAt = at
		return err
	})
	if err != nil {
		return nil, locT{}, err
	}
	if _, ok := bodyAt.(AList); !ok {
		return nil, locT{}, fmt.Errorf("cost: flatMap body must produce a list")
	}
	return ScaleCard(bodyAt, n), leafLoc(r.root()), nil
}

// applyFoldL implements the Figure 6 foldL rule. The source is streamed
// element-wise; when the accumulator grows, it shuttles between the root and
// the intermediate device every iteration, with its size growing linearly in
// the iteration index — the closed-form Sum produces the x(x+1)/2 shape of
// the naive insertion sort (Section 7.2).
func (r *run) applyFoldL(fn ocal.FoldL, arg ocal.Expr, g *ctx) (AType, locT, error) {
	rootLoc := leafLoc(r.root())
	argAt, argLoc, err := r.est(arg, g)
	if err != nil {
		return nil, locT{}, err
	}
	n, err := Card(argAt)
	if err != nil {
		return nil, locT{}, fmt.Errorf("cost: foldL over non-list: %w", err)
	}
	elem, _ := Elem(argAt)
	if src := argLoc.nodeOf(); src != r.root() && src != "" {
		r.chargeUp(src, Size(argAt), n)
	}
	initAt, _, err := r.est(fn.Init, g)
	if err != nil {
		return nil, locT{}, err
	}

	// One symbolic application of the step to (init, elem) yields the
	// per-iteration growth; step-internal charges are scaled by n.
	var stepAt AType
	err = r.scaled(n, func() error {
		at, err := r.applyStep(fn.Fn, ATuple{initAt, elem}, g)
		stepAt = at
		return err
	})
	if err != nil {
		return nil, locT{}, err
	}

	// Result per Figure 5: R(c) + card·(R(step) − R(c)).
	resAt := foldResult(initAt, stepAt, n)
	if fn.Hint != ocal.HintNone {
		resAt = applyHint(fn.Hint, resAt, []AType{argAt})
	}

	// Accumulator shuttling: only when the accumulator demonstrably grows.
	growB := sym.Sub(Size(stepAt), Size(initAt))
	if !isZeroExpr(growB) {
		mi := r.inter()
		if mi != "" && mi != r.root() {
			s0 := Size(initAt)
			c0 := cardOrZero(initAt)
			gB := growB
			gC := sym.Sub(cardOrZero(stepAt), c0)
			i := sym.V("_i")
			upBytes := sym.Sum("_i", n, sym.Add(s0, sym.Mul(i, gB)))
			upInits := n // one read initiation per iteration (sequential acc read)
			downBytes := sym.Sum("_i", n, sym.Add(s0, sym.Mul(sym.Add(i, sym.One), gB)))
			downInits := sym.Sum("_i", n, sym.Add(c0, sym.Mul(sym.Add(i, sym.One), gC)))
			r.chargePathUp(mi, upBytes, upInits)
			r.chargeDownPath(mi, downBytes, downInits)
		}
	}
	return resAt, rootLoc, nil
}

// chargePathUp charges each edge from node src up to the root.
func (r *run) chargePathUp(src string, bytes, inits sym.Expr) {
	for src != r.root() && src != "" {
		src = r.chargeUp(src, bytes, inits)
	}
}

// applyStep computes the result annotated type of applying a fold step
// function to an argument type, binding everything at the root (transfers
// are modelled by the fold rule itself).
func (r *run) applyStep(fn ocal.Expr, argAt AType, g *ctx) (AType, error) {
	rootLoc := leafLoc(r.root())
	switch f := fn.(type) {
	case ocal.Lam:
		ng := g
		if len(f.Params) == 1 {
			ng = ng.bind(f.Params[0], binding{at: argAt, loc: rootLoc})
		} else {
			tup, ok := argAt.(ATuple)
			if !ok || len(tup) != len(f.Params) {
				return nil, fmt.Errorf("cost: fold step arity mismatch on %s", argAt)
			}
			for i, p := range f.Params {
				ng = ng.bind(p, binding{at: tup[i], loc: rootLoc})
			}
		}
		at, _, err := r.est(f.Body, ng)
		return at, err
	case ocal.UnfoldR:
		// Merging step: output card is the sum of the input cards. A bare
		// list is a collapsed 1-tuple (see applyUnfoldR).
		tup, ok := argAt.(ATuple)
		if !ok {
			if l, isList := argAt.(AList); isList {
				tup = ATuple{l}
			} else {
				return nil, fmt.Errorf("cost: unfoldR step needs a tuple of lists")
			}
		}
		return mergeResult(tup, f.Hint)
	}
	return nil, fmt.Errorf("cost: unsupported fold step %s", ocal.String(fn))
}

func foldResult(initAt, stepAt AType, n sym.Expr) AType {
	switch s := stepAt.(type) {
	case AList:
		c0 := cardOrZero(initAt)
		growth := sym.Sub(s.Card, c0)
		return AList{Card: sym.Add(c0, sym.Mul(n, growth)), Elem: s.Elem}
	case AConst:
		i0, ok := initAt.(AConst)
		if !ok {
			return stepAt
		}
		return AConst{Size: sym.Add(i0.Size, sym.Mul(n, sym.Sub(s.Size, i0.Size)))}
	case ATuple:
		i0, ok := initAt.(ATuple)
		if !ok || len(i0) != len(s) {
			return stepAt
		}
		out := make(ATuple, len(s))
		for i := range s {
			out[i] = foldResult(i0[i], s[i], n)
		}
		return out
	}
	return stepAt
}

func cardOrZero(a AType) sym.Expr {
	if c, err := Card(a); err == nil {
		return c
	}
	return sym.Zero
}

func isZeroExpr(e sym.Expr) bool {
	c, ok := e.(sym.Const)
	return ok && c == 0
}

// mergeResult is the worst-case output of a merge-style unfoldR.
func mergeResult(inputs ATuple, hint ocal.CardHint) (AType, error) {
	var cards []sym.Expr
	var elem AType
	for _, in := range inputs {
		l, ok := in.(AList)
		if !ok {
			return nil, fmt.Errorf("cost: unfoldR input is not a list: %s", in)
		}
		cards = append(cards, l.Card)
		if elem == nil {
			elem = l.Elem
		} else {
			elem = MaxT(elem, l.Elem)
		}
	}
	out := AList{Card: sym.Add(cards...), Elem: elem}
	return applyHint(hint, out, toATypes(inputs)), nil
}

func toATypes(t ATuple) []AType { return []AType(t) }

// containsList reports whether an annotated type has a list component.
func containsList(a AType) bool {
	switch t := a.(type) {
	case AList:
		return true
	case ATuple:
		for _, e := range t {
			if containsList(e) {
				return true
			}
		}
	}
	return false
}

// applyHint overrides the worst-case output cardinality with a
// programmer-supplied estimate (Section 5.1).
func applyHint(hint ocal.CardHint, def AType, inputs []AType) AType {
	l, ok := def.(AList)
	if !ok || hint == ocal.HintNone {
		return def
	}
	var cards []sym.Expr
	for _, in := range inputs {
		if il, ok := in.(AList); ok {
			cards = append(cards, il.Card)
		}
	}
	if len(cards) == 0 {
		return def
	}
	switch hint {
	case ocal.HintSumCards:
		return AList{Card: sym.Add(cards...), Elem: l.Elem}
	case ocal.HintFirstCard:
		return AList{Card: cards[0], Elem: l.Elem}
	case ocal.HintMaxCards:
		return AList{Card: sym.Max(cards...), Elem: l.Elem}
	}
	return def
}

// applyUnfoldR costs a top-level merge (set operations, zips): every input
// list is streamed up in blocks of K, the output is produced at the root.
func (r *run) applyUnfoldR(fn ocal.UnfoldR, arg ocal.Expr, g *ctx) (AType, locT, error) {
	argAt, argLoc, err := r.est(arg, g)
	if err != nil {
		return nil, locT{}, err
	}
	tup, ok := argAt.(ATuple)
	if !ok {
		// A single-input merge's 1-tuple wrapper has no surface syntax —
		// it prints as a parenthesized list and re-parses as the list
		// itself — so a bare list is the same shape.
		if l, isList := argAt.(AList); isList {
			tup = ATuple{l}
		} else {
			return nil, locT{}, fmt.Errorf("cost: unfoldR argument must be a tuple of lists")
		}
	}
	k := paramExpr(fn.K)
	// Streams that are alone on their device are read sequentially (the
	// seq-ac reasoning applied to the blocked unfoldR): interleaved streams
	// from the same device seek per block.
	perDevice := map[string]int{}
	for i := range tup {
		if src := argLoc.at(i).nodeOf(); src != r.root() && src != "" {
			perDevice[src]++
		}
	}
	for i, in := range tup {
		l, ok := in.(AList)
		if !ok {
			return nil, locT{}, fmt.Errorf("cost: unfoldR input %d is not a list", i+1)
		}
		src := argLoc.at(i).nodeOf()
		if src == r.root() || src == "" {
			continue
		}
		var inits sym.Expr
		parent := r.h.Parent(src)
		if perDevice[src] == 1 && r.p.Output != src && parent != nil {
			inits = r.seqInits(src, parent.Name, Size(l))
		} else {
			inits = sym.Ceil(sym.Div(l.Card, k))
		}
		up := r.chargeUp(src, Size(l), inits)
		if !fn.K.IsOne() {
			r.addResident(up, fmt.Sprintf("mergebuf:%d:%s", i, fn.K.String()),
				sym.Mul(k, Size(l.Elem)))
			if d := r.h.Node(src); d != nil && d.MaxSeqR > 0 {
				r.addCons(sym.Mul(k, Size(l.Elem)), sym.C(float64(d.MaxSeqR)),
					"merge input block fits maxSeqR of "+src)
			}
		}
	}
	out, err := mergeResult(tup, fn.Hint)
	if err != nil {
		return nil, locT{}, err
	}
	return out, leafLoc(r.root()), nil
}

// applyTreeFold is the external-sort cost plugin. For a seed of x runs and
// branching b = 2^k, the data makes ceil(log2(x)/k) passes; every pass moves
// all N elements up and down with block-amortized initiations:
//
//	levels · (N·elemB·(UnitTrUp+UnitTrDown) + N/bin·InitComUp + N/bout·InitComDown)
//
// matching the paper's 2^k-way External Merge-Sort formula in Section 7.2.
func (r *run) applyTreeFold(fn ocal.TreeFold, arg ocal.Expr, g *ctx) (AType, locT, error) {
	rootLoc := leafLoc(r.root())
	argAt, argLoc, err := r.est(arg, g)
	if err != nil {
		return nil, locT{}, err
	}
	runs, err := Card(argAt)
	if err != nil {
		return nil, locT{}, fmt.Errorf("cost: treeFold over non-list: %w", err)
	}
	runAt, _ := Elem(argAt)

	unf, isMerge := fn.Fn.(ocal.UnfoldR)
	if !isMerge {
		// Generic treeFold on in-memory data: result is one item; charge
		// nothing beyond fetching the seed stream.
		if src := argLoc.nodeOf(); src != r.root() && src != "" {
			r.chargeUp(src, Size(argAt), runs)
		}
		return runAt, rootLoc, nil
	}

	runList, ok := runAt.(AList)
	if !ok {
		return nil, locT{}, fmt.Errorf("cost: treeFold merge needs a list of runs, got %s", runAt)
	}
	total := sym.Mul(runs, runList.Card) // N elements overall
	elemB := Size(runList.Elem)
	bytes := sym.Mul(total, elemB)

	b, bLit := fn.K.Literal()
	var levels sym.Expr
	if bLit && b >= 2 {
		levels = sym.Ceil(sym.Div(sym.Log2(runs), sym.C(math.Log2(float64(b)))))
	} else {
		levels = sym.Ceil(sym.Log2(runs))
	}
	levels = sym.Max(sym.One, levels)

	mi := r.inter()
	if mi == "" || mi == r.root() {
		mi = argLoc.nodeOf()
	}
	bin := paramExpr(unf.K)
	bout := paramExpr(fn.OutK)
	upInits := sym.Mul(levels, sym.Ceil(sym.Div(total, bin)))
	downInits := sym.Mul(levels, sym.Ceil(sym.Div(total, bout)))
	if mi != "" && mi != r.root() {
		r.chargePathUp(mi, sym.Mul(levels, bytes), upInits)
		r.chargeDownPath(mi, sym.Mul(levels, bytes), downInits)
		// Residency: b input buffers of bin elements plus one output buffer.
		if !unf.K.IsOne() {
			nb := float64(2)
			if bLit {
				nb = float64(b)
			}
			r.addResident(r.root(), "sortbufs:"+unf.K.String(),
				sym.Add(sym.Mul(sym.C(nb), bin, elemB), sym.Mul(bout, elemB)))
			if d := r.h.Node(mi); d != nil {
				if d.MaxSeqR > 0 {
					r.addCons(sym.Mul(bin, elemB), sym.C(float64(d.MaxSeqR)),
						"sort input block fits maxSeqR of "+mi)
				}
				if d.MaxSeqW > 0 {
					r.addCons(sym.Mul(bout, elemB), sym.C(float64(d.MaxSeqW)),
						"sort output block fits maxSeqW of "+mi)
				}
			}
		}
	}
	return AList{Card: total, Elem: runList.Elem}, rootLoc, nil
}

// applyPartition is the hash-part cost plugin: one sequential pass reading
// the input and writing s partitions to the intermediate device (linear-time
// implementation plugin of Section 3).
func (r *run) applyPartition(fn ocal.PartitionF, arg ocal.Expr, g *ctx) (AType, locT, error) {
	argAt, argLoc, err := r.est(arg, g)
	if err != nil {
		return nil, locT{}, err
	}
	l, ok := argAt.(AList)
	if !ok {
		return nil, locT{}, fmt.Errorf("cost: partition over non-list")
	}
	s := paramExpr(fn.S)
	mi := r.inter()
	src := argLoc.nodeOf()
	bytes := Size(l)
	if src != r.root() && src != "" {
		// Sequential read pass of the whole input.
		parent := r.h.Parent(src)
		var inits sym.Expr = sym.One
		if parent != nil {
			inits = r.seqInits(src, parent.Name, bytes)
		}
		r.chargePathUp(src, bytes, inits)
	}
	if mi != "" && mi != r.root() {
		// Write the s partitions through per-bucket buffers: the RAM splits
		// into s+1 write buffers of ram/(s+1) bytes, and every buffer
		// eviction initiates a device write (interleaved streams seek).
		ramBytes := sym.C(float64(r.h.Root.Size))
		bufW := sym.Div(ramBytes, sym.Add(s, sym.One))
		flushes := sym.Max(s, sym.Ceil(sym.Div(bytes, bufW)))
		r.chargeDownPath(mi, bytes, flushes)
		saved := r.phase
		r.phase = "partition"
		r.addResident(r.root(), "partbufs:"+fn.S.String(), sym.Mul(s, bufW))
		r.phase = saved
	}
	bucket := AList{Card: sym.Ceil(sym.Div(l.Card, s)), Elem: l.Elem}
	out := AList{Card: s, Elem: bucket}
	return out, leafLoc(mi), nil
}

// applyZipLists pairs corresponding buckets; it is pure bookkeeping.
func (r *run) applyZipLists(fn ocal.ZipLists, arg ocal.Expr, g *ctx) (AType, locT, error) {
	argAt, argLoc, err := r.est(arg, g)
	if err != nil {
		return nil, locT{}, err
	}
	tup, ok := argAt.(ATuple)
	if !ok || len(tup) != fn.N {
		return nil, locT{}, fmt.Errorf("cost: zip expects a %d-tuple", fn.N)
	}
	elems := make(ATuple, fn.N)
	var outer sym.Expr = sym.One
	for i, in := range tup {
		l, ok := in.(AList)
		if !ok {
			return nil, locT{}, fmt.Errorf("cost: zip input %d is not a list", i+1)
		}
		elems[i] = l.Elem
		if i == 0 {
			outer = l.Card
		}
	}
	loc := argLoc.at(0)
	return AList{Card: outer, Elem: elems}, loc, nil
}
