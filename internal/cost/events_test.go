package cost

import (
	"strings"
	"testing"

	"ocas/internal/memory"
	sym "ocas/internal/symbolic"
)

func TestEventsAccumulateAndScale(t *testing.T) {
	ev := NewEvents()
	e := Edge{From: "hdd", To: "ram"}
	ev.AddInit(e, sym.V("x"))
	ev.AddInit(e, sym.C(2))
	ev.AddBytes(e, sym.C(100))
	ev.Scale(sym.C(3))
	env := sym.Env{"x": 5}
	if got := ev.Init(e).Eval(env); got != 21 {
		t.Errorf("init = %v want 21", got)
	}
	if got := ev.Bytes(e).Eval(env); got != 300 {
		t.Errorf("bytes = %v want 300", got)
	}
}

func TestEventsMerge(t *testing.T) {
	a, b := NewEvents(), NewEvents()
	e := Edge{From: "hdd", To: "ram"}
	a.AddBytes(e, sym.C(1))
	b.AddBytes(e, sym.C(2))
	b.AddInit(Edge{From: "ram", To: "hdd"}, sym.C(7))
	a.Merge(b)
	if got := a.Bytes(e).Eval(nil); got != 3 {
		t.Errorf("merged bytes = %v", got)
	}
	if got := a.Init(Edge{From: "ram", To: "hdd"}).Eval(nil); got != 7 {
		t.Errorf("merged init = %v", got)
	}
}

// TestFigure4Style renders the per-edge event table for the blocked BNL of
// Figure 4 and checks the structural content (the paper's table: per-edge
// InitCom event counts and transferred data as formulas over x, y, k1, k2).
func TestFigure4Style(t *testing.T) {
	h := memory.HDDRAM(32 * memory.MiB)
	res, err := Estimate(h, joinPlacement(""), blockedJoin())
	if err != nil {
		t.Fatal(err)
	}
	s := res.Events.String()
	if !strings.Contains(s, "hdd->ram") {
		t.Fatalf("event table must list the hdd->ram edge:\n%s", s)
	}
	// Deterministic rendering (golden stability).
	res2, err := Estimate(h, joinPlacement(""), blockedJoin())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Events.String() != s {
		t.Error("event table rendering is not deterministic")
	}
	// The formulas carry the Figure 4 shape: k1-fold and k1·k2-fold
	// reductions of InitCom events.
	e := Edge{From: "hdd", To: "ram"}
	base := res.Events.Init(e).Eval(sym.Env{"x": 1000, "y": 1000, "k1": 1, "k2": 1})
	blocked := res.Events.Init(e).Eval(sym.Env{"x": 1000, "y": 1000, "k1": 10, "k2": 10})
	if base/blocked < 50 {
		t.Errorf("blocking should slash InitCom events: %v -> %v", base, blocked)
	}
}

func TestConstraintString(t *testing.T) {
	c := Constraint{LHS: sym.V("k"), RHS: sym.C(10), Why: "test"}
	if c.String() != "k <= 10 (test)" {
		t.Errorf("got %q", c.String())
	}
}
