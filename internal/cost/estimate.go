package cost

import (
	"fmt"
	"sort"
	"strings"

	"ocas/internal/memory"
	"ocas/internal/ocal"
	sym "ocas/internal/symbolic"
)

// Placement states where program inputs reside in the hierarchy, how large
// they are (symbolically), and where the output is written ("" = consumed by
// the CPU), per Section 4: "the location of the input data, as well as the
// output node, must both be specified".
type Placement struct {
	InputLoc  map[string]string // input var -> node name
	InputType map[string]ocal.Type
	InputCard map[string]sym.Expr // input var -> cardinality (e.g. Var("x"))
	Output    string              // output node, or "" for CPU-consumed
	// Intermediate is the node where growing intermediate results (fold
	// accumulators, partitions, sort runs) spill; defaults to the output
	// node, else the location of the alphabetically first input.
	Intermediate string
}

// Result of costing one program.
type Result struct {
	Size        AType
	Events      *Events
	Constraints []Constraint
	// Seconds is the full symbolic cost formula (includes the alternative
	// input ordering when an order-inputs wrapper is present).
	Seconds sym.Expr
	// Params lists the symbolic tuning parameters appearing in the formula.
	Params []string
}

// locT locates a value: a leaf node name, or per-component locations for
// tuples (so a tuple of device-resident relations keeps each component's
// placement).
type locT struct {
	node  string
	comps []locT
}

func leafLoc(n string) locT { return locT{node: n} }

func (l locT) at(i int) locT {
	if len(l.comps) > 0 && i < len(l.comps) {
		return l.comps[i]
	}
	return locT{node: l.node}
}

// nodeOf collapses a location to a single node (used where a compound value
// is consumed as a whole).
func (l locT) nodeOf() string {
	if l.node != "" {
		return l.node
	}
	if len(l.comps) > 0 {
		return l.comps[0].nodeOf()
	}
	return ""
}

type binding struct {
	at  AType
	loc locT
}

// ctx is a persistent binding environment: bind pushes one entry, sharing
// the tail with the parent scope. Environments are tiny (a handful of
// binders), so the linear lookup beats the map-copy-per-bind this used to
// be — est binds at every loop and lambda of every candidate program.
type ctx struct {
	name   string
	b      binding
	parent *ctx
}

func (c *ctx) bind(name string, b binding) *ctx {
	return &ctx{name: name, b: b, parent: c}
}

func (c *ctx) lookup(name string) (binding, bool) {
	for ; c != nil; c = c.parent {
		if c.name == name {
			return c.b, true
		}
	}
	return binding{}, false
}

type run struct {
	h     *memory.Hierarchy
	p     Placement
	ev    *Events
	cons  []Constraint
	resid map[string]map[string]sym.Expr // node -> dedupe key -> resident bytes
	// downTo records devices that received intermediate writes during
	// estimation; the final output write can only be sequential when the
	// output device was otherwise untouched.
	downTo map[string]bool
	// phase labels the residency group: buffers of phases that do not
	// overlap in time (e.g. hash-partitioning versus the subsequent
	// per-bucket joins) must not share one capacity constraint.
	phase string
}

func (r *run) phaseName() string {
	if r.phase == "" {
		return "main"
	}
	return r.phase
}

func (r *run) root() string { return r.h.Root.Name }

func (r *run) inter() string {
	if r.p.Intermediate != "" {
		return r.p.Intermediate
	}
	if r.p.Output != "" {
		return r.p.Output
	}
	var names []string
	for _, loc := range r.p.InputLoc {
		names = append(names, loc)
	}
	sort.Strings(names)
	if len(names) > 0 {
		return names[0]
	}
	return ""
}

func (r *run) addResident(node, key string, bytes sym.Expr) {
	group := node + "\x00" + r.phaseName()
	if r.resid[group] == nil {
		r.resid[group] = map[string]sym.Expr{}
	}
	r.resid[group][key] = bytes
}

func (r *run) addCons(lhs, rhs sym.Expr, why string) {
	r.cons = append(r.cons, Constraint{LHS: lhs, RHS: rhs, Why: why})
}

// chargeUp charges moving `bytes` with `inits` transfer initiations one hop
// upward from node loc, returning the destination node.
func (r *run) chargeUp(loc string, bytes, inits sym.Expr) string {
	parent := r.h.Parent(loc)
	if parent == nil {
		return loc
	}
	e := Edge{From: loc, To: parent.Name}
	r.ev.AddBytes(e, bytes)
	r.ev.AddInit(e, inits)
	return parent.Name
}

// chargeDownPath charges moving bytes from the root down to node dst,
// one edge at a time.
func (r *run) chargeDownPath(dst string, bytes, inits sym.Expr) {
	path, err := r.h.PathToRoot(dst)
	if err != nil {
		return
	}
	// path = dst ... root; walk top-down.
	for i := len(path) - 1; i > 0; i-- {
		e := Edge{From: path[i], To: path[i-1]}
		r.ev.AddBytes(e, bytes)
		r.ev.AddInit(e, inits)
	}
	if r.downTo == nil {
		r.downTo = map[string]bool{}
	}
	r.downTo[dst] = true
}

// paramExpr converts an AST parameter to a symbolic expression.
func paramExpr(p ocal.Param) sym.Expr {
	if v, ok := p.Literal(); ok {
		return sym.C(float64(v))
	}
	return sym.V(p.Sym)
}

// seqInits is the seq-ac InitCom count of Section 6.2:
// max(1, total / min(m1.maxSeqR, m2.maxSeqW)), with 0 meaning "unlimited".
func (r *run) seqInits(from, to string, bytes sym.Expr) sym.Expr {
	var lim int64
	if n := r.h.Node(from); n != nil && n.MaxSeqR > 0 {
		lim = n.MaxSeqR
	}
	if n := r.h.Node(to); n != nil && n.MaxSeqW > 0 && (lim == 0 || n.MaxSeqW < lim) {
		lim = n.MaxSeqW
	}
	if lim == 0 {
		return sym.One
	}
	return sym.Max(sym.One, sym.Div(bytes, sym.C(float64(lim))))
}

// Estimate costs prog under the hierarchy and placement. It implements the
// rules of Figures 5 and 6 together with the definition cost plugins of
// Sections 3 and 6.
func Estimate(h *memory.Hierarchy, p Placement, prog ocal.Expr) (*Result, error) {
	// order-inputs wrappers are costed as the minimum over both input
	// orderings: the formula is evaluated numerically by the optimizer, so
	// Min picks the ordering the generated program would pick at run time.
	if inner, a, b, ok := matchOrderInputs(prog); ok {
		swapped := ocal.App{Fn: inner, Arg: ocal.Tup{Elems: []ocal.Expr{b, a}}}
		direct := ocal.App{Fn: inner, Arg: ocal.Tup{Elems: []ocal.Expr{a, b}}}
		r1, err := estimateOne(h, p, direct)
		if err != nil {
			return nil, err
		}
		r2, err := estimateOne(h, p, swapped)
		if err != nil {
			return nil, err
		}
		r1.Seconds = sym.Min(r1.Seconds, r2.Seconds)
		r1.Constraints = append(r1.Constraints, r2.Constraints...)
		r1.Params = mergeParams(r1.Params, r2.Params)
		return r1, nil
	}
	return estimateOne(h, p, prog)
}

// matchOrderInputs recognizes
//
//	(\<x1,x2> -> body)(if length(a) <= length(b) then <a,b> else <b,a>)
//
// and returns the lambda and the two inputs.
func matchOrderInputs(e ocal.Expr) (inner ocal.Expr, a, b ocal.Expr, ok bool) {
	app, isApp := e.(ocal.App)
	if !isApp {
		return nil, nil, nil, false
	}
	cond, isIf := app.Arg.(ocal.If)
	if !isIf {
		return nil, nil, nil, false
	}
	t1, ok1 := cond.Then.(ocal.Tup)
	t2, ok2 := cond.Else.(ocal.Tup)
	if !ok1 || !ok2 || len(t1.Elems) != 2 || len(t2.Elems) != 2 {
		return nil, nil, nil, false
	}
	if ocal.String(t1.Elems[0]) != ocal.String(t2.Elems[1]) ||
		ocal.String(t1.Elems[1]) != ocal.String(t2.Elems[0]) {
		return nil, nil, nil, false
	}
	return app.Fn, t1.Elems[0], t1.Elems[1], true
}

func mergeParams(a, b []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range append(append([]string{}, a...), b...) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func estimateOne(h *memory.Hierarchy, p Placement, prog ocal.Expr) (*Result, error) {
	r := &run{h: h, p: p, ev: NewEvents(), resid: map[string]map[string]sym.Expr{}}
	var g *ctx
	for name, loc := range p.InputLoc {
		t, ok := p.InputType[name]
		if !ok {
			return nil, fmt.Errorf("cost: input %q has no type", name)
		}
		card, ok := p.InputCard[name]
		if !ok {
			return nil, fmt.Errorf("cost: input %q has no cardinality", name)
		}
		g = g.bind(name, binding{at: FromType(t, card, ""), loc: leafLoc(loc)})
	}
	at, _, err := r.est(prog, g)
	if err != nil {
		return nil, err
	}

	// Output write-out: the program result is evicted from the root to the
	// output node through the output buffer (Section 5.2: "when the output
	// buffer is filled, it is completely evicted to the output memory
	// level").
	if p.Output != "" {
		bytes := Size(at)
		outK := findOutK(prog)
		// When nothing else touches the output device (no input stored
		// there, no intermediate spill), the buffered output stream is
		// written sequentially — the seq-ac reasoning applied to writes,
		// and the reason the "other HDD" and flash variants win.
		outSequential := !r.downTo[p.Output]
		for _, loc := range p.InputLoc {
			if loc == p.Output {
				outSequential = false
			}
		}
		// Unbuffered element-wise output (the naive specification) pays one
		// initiation per tuple even on a dedicated device: sequentiality is
		// only exploited once apply-block has introduced the output buffer.
		if v, ok := outK.Literal(); ok && v == 1 {
			outSequential = false
		}
		var inits sym.Expr
		if outSequential {
			if parent := h.Parent(p.Output); parent != nil {
				inits = r.seqInits(parent.Name, p.Output, bytes)
			} else {
				inits = sym.One
			}
			if v, ok := outK.Literal(); !ok || v != 1 {
				ko := paramExpr(outK)
				var elemB sym.Expr = sym.One
				if el, err := Elem(at); err == nil {
					elemB = Size(el)
				}
				r.addResident(r.root(), "outbuf:"+outK.String(), sym.Mul(ko, elemB))
			}
			r.chargeDownPath(p.Output, bytes, inits)
		} else if v, ok := outK.Literal(); ok && v == 1 {
			// Unbuffered: one initiation per output element.
			if c, err := Card(at); err == nil {
				inits = c
			} else {
				inits = sym.One
			}
		} else {
			ko := paramExpr(outK)
			if c, err := Card(at); err == nil {
				inits = sym.Ceil(sym.Div(c, ko))
			} else {
				inits = sym.One
			}
			var elemB sym.Expr = sym.One
			if el, err := Elem(at); err == nil {
				elemB = Size(el)
			}
			r.addResident(r.root(), "outbuf:"+outK.String(), sym.Mul(ko, elemB))
			if n := h.Node(p.Output); n != nil && n.MaxSeqW > 0 {
				r.addCons(sym.Mul(ko, elemB), sym.C(float64(n.MaxSeqW)),
					"output block fits maxSeqW of "+p.Output)
			}
		}
		r.chargeDownPath(p.Output, bytes, inits)
	}

	// Residency constraints: everything resident at a node during one
	// phase must fit that node.
	var groups []string
	for g := range r.resid {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	for _, g := range groups {
		var keys []string
		for k := range r.resid[g] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var terms []sym.Expr
		for _, k := range keys {
			terms = append(terms, r.resid[g][k])
		}
		nodeName, phase, _ := strings.Cut(g, "\x00")
		node := h.Node(nodeName)
		if node != nil {
			r.addCons(sym.Add(terms...), sym.C(float64(node.Size)),
				fmt.Sprintf("resident data fits %s (%s phase)", nodeName, phase))
		}
	}

	res := &Result{
		Size:        at,
		Events:      r.ev,
		Constraints: r.cons,
		Seconds:     r.ev.Seconds(h),
		Params:      ocal.Params(prog),
	}
	return res, nil
}

// findOutK locates the output-buffering parameter: the outermost For.OutK or
// TreeFold.OutK that is not 1.
func findOutK(e ocal.Expr) ocal.Param {
	switch t := e.(type) {
	case ocal.For:
		if !t.OutK.IsOne() {
			return t.OutK
		}
	case ocal.TreeFold:
		if !t.OutK.IsOne() {
			return t.OutK
		}
	case ocal.UnfoldR:
		if !t.OutK.IsOne() {
			return t.OutK
		}
	}
	for _, c := range ocal.Children(e) {
		if p := findOutK(c); !p.IsOne() {
			return p
		}
	}
	return ocal.Lit(1)
}

// scaled estimates f's charges in a sub-tally and multiplies them by factor
// before merging, implementing the "card/k · C(body)" part of Figure 6.
func (r *run) scaled(factor sym.Expr, f func() error) error {
	saved := r.ev
	r.ev = NewEvents()
	err := f()
	sub := r.ev
	r.ev = saved
	if err != nil {
		return err
	}
	sub.Scale(factor)
	r.ev.Merge(sub)
	return nil
}

func (r *run) est(e ocal.Expr, g *ctx) (AType, locT, error) {
	rootLoc := leafLoc(r.root())
	switch t := e.(type) {
	case ocal.Var:
		b, ok := g.lookup(t.Name)
		if !ok {
			return nil, locT{}, fmt.Errorf("cost: unbound variable %q", t.Name)
		}
		return b.at, b.loc, nil
	case ocal.IntLit, ocal.BoolLit:
		return AConst{Size: sym.C(float64(ocal.AtomBytes))}, rootLoc, nil
	case ocal.StrLit:
		return AConst{Size: sym.C(float64(len(t.V)))}, rootLoc, nil
	case ocal.Tup:
		out := make(ATuple, len(t.Elems))
		locs := make([]locT, len(t.Elems))
		for i, el := range t.Elems {
			at, loc, err := r.est(el, g)
			if err != nil {
				return nil, locT{}, err
			}
			out[i] = at
			locs[i] = loc
		}
		return out, locT{comps: locs}, nil
	case ocal.Proj:
		at, loc, err := r.est(t.E, g)
		if err != nil {
			return nil, locT{}, err
		}
		tup, ok := at.(ATuple)
		if !ok || t.I < 1 || t.I > len(tup) {
			return nil, locT{}, fmt.Errorf("cost: bad projection .%d on %s", t.I, at)
		}
		return tup[t.I-1], loc.at(t.I - 1), nil
	case ocal.Single:
		at, _, err := r.est(t.E, g)
		if err != nil {
			return nil, locT{}, err
		}
		return AList{Card: sym.One, Elem: at}, rootLoc, nil
	case ocal.Empty:
		return AList{Card: sym.Zero, Elem: AConst{Size: sym.Zero}}, rootLoc, nil
	case ocal.If:
		if _, _, err := r.est(t.Cond, g); err != nil {
			return nil, locT{}, err
		}
		thenAt, thenLoc, err := r.est(t.Then, g)
		if err != nil {
			return nil, locT{}, err
		}
		elseAt, _, err := r.est(t.Else, g)
		if err != nil {
			return nil, locT{}, err
		}
		return MaxT(thenAt, elseAt), thenLoc, nil
	case ocal.Prim:
		return r.estPrim(t, g)
	case ocal.For:
		return r.estFor(t, g)
	case ocal.App:
		return r.estApp(t, g)
	case ocal.Lam, ocal.FlatMap, ocal.FoldL, ocal.TreeFold, ocal.UnfoldR,
		ocal.Mrg, ocal.ZipStep, ocal.FuncPow, ocal.PartitionF, ocal.ZipLists:
		return nil, locT{}, fmt.Errorf("cost: bare function %s not applied; costing assumes definitions are matched with applications", ocal.String(e))
	}
	return nil, locT{}, fmt.Errorf("cost: cannot estimate %T", e)
}

func (r *run) estPrim(t ocal.Prim, g *ctx) (AType, locT, error) {
	rootLoc := leafLoc(r.root())
	args := make([]AType, len(t.Args))
	for i, a := range t.Args {
		at, _, err := r.est(a, g)
		if err != nil {
			return nil, locT{}, err
		}
		args[i] = at
	}
	switch t.Op {
	case ocal.OpConcat:
		return AddT(args[0], args[1]), rootLoc, nil
	case ocal.OpHead:
		el, err := Elem(args[0])
		if err != nil {
			return nil, locT{}, err
		}
		return el, rootLoc, nil
	case ocal.OpTail:
		l, ok := args[0].(AList)
		if !ok {
			return nil, locT{}, fmt.Errorf("cost: tail of non-list")
		}
		return AList{Card: sym.Max(sym.Zero, sym.Sub(l.Card, sym.One)), Elem: l.Elem}, rootLoc, nil
	default:
		return AConst{Size: sym.C(float64(ocal.AtomBytes))}, rootLoc, nil
	}
}

// seqStillValid re-checks the seq-ac side condition against the current
// program: rewrites applied after the annotation (e.g. swap-iter moving a
// same-device loop inside) can invalidate it, in which case the costing
// engine falls back to per-block initiations. The condition mirrors the
// rule's: no other loop inside the body streams from the same device, and
// the program output does not interfere with it.
func (r *run) seqStillValid(f ocal.For, g *ctx, dev string) bool {
	if r.p.Output == dev {
		return false
	}
	var conflict func(e ocal.Expr) bool
	conflict = func(e ocal.Expr) bool {
		if inner, ok := e.(ocal.For); ok {
			if src, ok := inner.Src.(ocal.Var); ok {
				if b, bound := g.lookup(src.Name); bound && b.loc.nodeOf() == dev {
					return true
				}
			}
		}
		for _, c := range ocal.Children(e) {
			if conflict(c) {
				return true
			}
		}
		return false
	}
	return !conflict(f.Body)
}

// estFor implements the for rule: blocked transfer of the source one hop up
// the hierarchy, body charged once per block (Figure 6), result size scaled
// by the iteration count (Figure 5).
func (r *run) estFor(t ocal.For, g *ctx) (AType, locT, error) {
	rootLoc := leafLoc(r.root())
	srcAt, srcLoc, err := r.est(t.Src, g)
	if err != nil {
		return nil, locT{}, err
	}
	n, err := Card(srcAt)
	if err != nil {
		return nil, locT{}, fmt.Errorf("cost: for over non-list: %w", err)
	}
	elem, _ := Elem(srcAt)
	k := paramExpr(t.K)
	elemBytes := Size(elem)

	xLocNode := r.root()
	src := srcLoc.nodeOf()
	if src != r.root() && src != "" {
		bytes := Size(srcAt)
		var inits sym.Expr
		parent := r.h.Parent(src)
		if t.Seq != nil && parent != nil && t.Seq.From == src && t.Seq.To == parent.Name &&
			r.seqStillValid(t, g, src) {
			inits = r.seqInits(src, parent.Name, bytes)
		} else {
			inits = sym.Ceil(sym.Div(n, k))
		}
		xLocNode = r.chargeUp(src, bytes, inits)
		if !t.K.IsOne() {
			r.addResident(xLocNode, "block:"+t.X+":"+t.K.String(), sym.Mul(k, elemBytes))
			if d := r.h.Node(src); d != nil && d.MaxSeqR > 0 {
				r.addCons(sym.Mul(k, elemBytes), sym.C(float64(d.MaxSeqR)),
					fmt.Sprintf("read block %s fits maxSeqR of %s", t.K.String(), src))
			}
		}
	}

	var xAt AType
	if t.K.IsOne() {
		xAt = elem
	} else {
		xAt = AList{Card: k, Elem: elem}
	}
	iters := sym.Ceil(sym.Div(n, k))
	var bodyAt AType
	err = r.scaled(iters, func() error {
		at, _, err := r.est(t.Body, g.bind(t.X, binding{at: xAt, loc: leafLoc(xLocNode)}))
		bodyAt = at
		return err
	})
	if err != nil {
		return nil, locT{}, err
	}
	if _, ok := bodyAt.(AList); !ok {
		return nil, locT{}, fmt.Errorf("cost: for body must produce a list, got %s", bodyAt)
	}
	return ScaleCard(bodyAt, iters), rootLoc, nil
}
