package interp

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"ocas/internal/ocal"
)

func ints(xs ...int64) ocal.List {
	l := make(ocal.List, len(xs))
	for i, x := range xs {
		l[i] = ocal.Int(x)
	}
	return l
}

func pairs(xs ...[2]int64) ocal.List {
	l := make(ocal.List, len(xs))
	for i, p := range xs {
		l[i] = ocal.Tuple{ocal.Int(p[0]), ocal.Int(p[1])}
	}
	return l
}

func mustEval(t *testing.T, e ocal.Expr, in map[string]ocal.Value, params map[string]int64) ocal.Value {
	t.Helper()
	v, err := Eval(e, in, params)
	if err != nil {
		t.Fatalf("eval %s: %v", ocal.String(e), err)
	}
	return v
}

func naiveJoin() ocal.Expr {
	cond := ocal.Prim{Op: ocal.OpEq, Args: []ocal.Expr{
		ocal.Proj{E: ocal.Var{Name: "x"}, I: 1}, ocal.Proj{E: ocal.Var{Name: "y"}, I: 1}}}
	body := ocal.If{Cond: cond,
		Then: ocal.Single{E: ocal.Tup{Elems: []ocal.Expr{ocal.Var{Name: "x"}, ocal.Var{Name: "y"}}}},
		Else: ocal.Empty{}}
	return ocal.For{X: "x", Src: ocal.Var{Name: "R"},
		Body: ocal.For{X: "y", Src: ocal.Var{Name: "S"}, Body: body}}
}

func TestNaiveJoin(t *testing.T) {
	R := pairs([2]int64{1, 10}, [2]int64{2, 20})
	S := pairs([2]int64{1, 100}, [2]int64{3, 300}, [2]int64{1, 101})
	got := mustEval(t, naiveJoin(), map[string]ocal.Value{"R": R, "S": S}, nil)
	want := ocal.List{
		ocal.Tuple{ocal.Tuple{ocal.Int(1), ocal.Int(10)}, ocal.Tuple{ocal.Int(1), ocal.Int(100)}},
		ocal.Tuple{ocal.Tuple{ocal.Int(1), ocal.Int(10)}, ocal.Tuple{ocal.Int(1), ocal.Int(101)}},
	}
	if !ocal.ValueEq(got, want) {
		t.Errorf("got %s want %s", got, want)
	}
}

func TestBlockedForPreservesOrder(t *testing.T) {
	// for (b [k] <- L) for (x <- b) [x] must equal identity for any k.
	prog := ocal.For{X: "b", K: ocal.SymP("k"), Src: ocal.Var{Name: "L"},
		Body: ocal.For{X: "x", Src: ocal.Var{Name: "b"},
			Body: ocal.Single{E: ocal.Var{Name: "x"}}}}
	L := ints(5, 3, 9, 1, 7, 7, 2)
	for k := int64(1); k <= 10; k++ {
		got := mustEval(t, prog, map[string]ocal.Value{"L": L}, map[string]int64{"k": k})
		if !ocal.ValueEq(got, L) {
			t.Errorf("k=%d: got %s want %s", k, got, L)
		}
	}
}

func TestFoldLSum(t *testing.T) {
	sum := ocal.App{
		Fn: ocal.FoldL{Init: ocal.IntLit{V: 0},
			Fn: ocal.Lam{Params: []string{"a", "x"},
				Body: ocal.Prim{Op: ocal.OpAdd, Args: []ocal.Expr{ocal.Var{Name: "a"}, ocal.Var{Name: "x"}}}}},
		Arg: ocal.Var{Name: "L"},
	}
	got := mustEval(t, sum, map[string]ocal.Value{"L": ints(1, 2, 3, 4)}, nil)
	if !ocal.ValueEq(got, ocal.Int(10)) {
		t.Errorf("got %s", got)
	}
}

func TestFlatMap(t *testing.T) {
	dup := ocal.App{
		Fn: ocal.FlatMap{Fn: ocal.Lam{Params: []string{"x"},
			Body: ocal.Prim{Op: ocal.OpConcat, Args: []ocal.Expr{
				ocal.Single{E: ocal.Var{Name: "x"}}, ocal.Single{E: ocal.Var{Name: "x"}}}}}},
		Arg: ocal.Var{Name: "L"},
	}
	got := mustEval(t, dup, map[string]ocal.Value{"L": ints(1, 2)}, nil)
	if !ocal.ValueEq(got, ints(1, 1, 2, 2)) {
		t.Errorf("got %s", got)
	}
}

func TestMrgMergesSorted(t *testing.T) {
	prog := ocal.App{Fn: ocal.UnfoldR{Fn: ocal.Mrg{}},
		Arg: ocal.Tup{Elems: []ocal.Expr{ocal.Var{Name: "A"}, ocal.Var{Name: "B"}}}}
	got := mustEval(t, prog, map[string]ocal.Value{
		"A": ints(1, 3, 5), "B": ints(2, 3, 6, 9)}, nil)
	if !ocal.ValueEq(got, ints(1, 2, 3, 3, 5, 6, 9)) {
		t.Errorf("got %s", got)
	}
}

func TestInsertionSortViaFoldMrg(t *testing.T) {
	// foldL([], unfoldR(mrg)) over a list of singleton lists sorts.
	prog := ocal.App{Fn: ocal.FoldL{Init: ocal.Empty{}, Fn: ocal.UnfoldR{Fn: ocal.Mrg{}}},
		Arg: ocal.Var{Name: "R"}}
	seed := ocal.List{ints(4), ints(1), ints(3), ints(2), ints(2)}
	got := mustEval(t, prog, map[string]ocal.Value{"R": seed}, nil)
	if !ocal.ValueEq(got, ints(1, 2, 2, 3, 4)) {
		t.Errorf("got %s", got)
	}
}

func TestTreeFoldMergeSort(t *testing.T) {
	// treeFold[2^k]([], unfoldR(funcPow[k](mrg))) sorts for every k.
	for k := 1; k <= 3; k++ {
		prog := ocal.App{
			Fn: ocal.TreeFold{K: ocal.Lit(int64(1 << k)), Init: ocal.Empty{},
				Fn: ocal.UnfoldR{Fn: ocal.FuncPow{K: k, Fn: ocal.Mrg{}}}},
			Arg: ocal.Var{Name: "R"},
		}
		seed := ocal.List{ints(9), ints(4), ints(6), ints(1), ints(8), ints(2), ints(2), ints(7), ints(5)}
		got := mustEval(t, prog, map[string]ocal.Value{"R": seed}, nil)
		if !ocal.ValueEq(got, ints(1, 2, 2, 4, 5, 6, 7, 8, 9)) {
			t.Errorf("k=%d: got %s", k, got)
		}
	}
}

// Property: the treeFold merge-sort agrees with sort.Slice for random input.
func TestQuickMergeSortMatchesStdlib(t *testing.T) {
	f := func(xs []int16, kk uint8) bool {
		k := int(kk%3) + 1
		seed := make(ocal.List, len(xs))
		vals := make([]int64, len(xs))
		for i, x := range xs {
			seed[i] = ints(int64(x))
			vals[i] = int64(x)
		}
		prog := ocal.App{
			Fn: ocal.TreeFold{K: ocal.Lit(int64(1 << k)), Init: ocal.Empty{},
				Fn: ocal.UnfoldR{Fn: ocal.FuncPow{K: k, Fn: ocal.Mrg{}}}},
			Arg: ocal.Var{Name: "R"},
		}
		got, err := Eval(prog, map[string]ocal.Value{"R": seed}, nil)
		if err != nil {
			return false
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		want := make(ocal.List, len(vals))
		for i, v := range vals {
			want[i] = ocal.Int(v)
		}
		return ocal.ValueEq(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTreeFoldEmptySeedReturnsInit(t *testing.T) {
	prog := ocal.App{
		Fn:  ocal.TreeFold{K: ocal.Lit(2), Init: ocal.Empty{}, Fn: ocal.UnfoldR{Fn: ocal.Mrg{}}},
		Arg: ocal.Var{Name: "R"},
	}
	got := mustEval(t, prog, map[string]ocal.Value{"R": ocal.List{}}, nil)
	if !ocal.ValueEq(got, ocal.List{}) {
		t.Errorf("got %s", got)
	}
}

func TestPartitionAndZip(t *testing.T) {
	R := pairs([2]int64{1, 10}, [2]int64{2, 20}, [2]int64{3, 30}, [2]int64{4, 40})
	part := ocal.App{Fn: ocal.PartitionF{S: ocal.Lit(4)}, Arg: ocal.Var{Name: "R"}}
	got := mustEval(t, part, map[string]ocal.Value{"R": R}, nil).(ocal.List)
	if len(got) != 4 {
		t.Fatalf("expected 4 buckets, got %d", len(got))
	}
	total := 0
	for _, b := range got {
		total += len(b.(ocal.List))
	}
	if total != 4 {
		t.Errorf("partition lost elements: %d", total)
	}
	// Same key always lands in the same bucket.
	R2 := pairs([2]int64{1, 99})
	got2 := mustEval(t, part, map[string]ocal.Value{"R": R2}, nil).(ocal.List)
	for i := range got {
		b1 := got[i].(ocal.List)
		b2 := got2[i].(ocal.List)
		if len(b2) == 1 {
			found := false
			for _, v := range b1 {
				if ocal.ValueEq(v.(ocal.Tuple)[0], ocal.Int(1)) {
					found = true
				}
			}
			if !found {
				t.Error("key 1 hashed into different buckets across runs")
			}
		}
	}
	// zip pairs corresponding buckets.
	zipProg := ocal.App{Fn: ocal.ZipLists{N: 2}, Arg: ocal.Tup{Elems: []ocal.Expr{part, part}}}
	z := mustEval(t, zipProg, map[string]ocal.Value{"R": R}, nil).(ocal.List)
	if len(z) != 4 {
		t.Fatalf("zip length %d", len(z))
	}
	for _, row := range z {
		tu := row.(ocal.Tuple)
		if !ocal.ValueEq(tu[0], tu[1]) {
			t.Error("zip of identical partitions should pair equal buckets")
		}
	}
}

// Property: hash-partitioned join equals naive join up to reordering.
func TestQuickHashPartitionedJoinEquivalence(t *testing.T) {
	join := ocal.Lam{Params: []string{"p1", "p2"}, Body: ocal.For{X: "x", Src: ocal.Var{Name: "p1"},
		Body: ocal.For{X: "y", Src: ocal.Var{Name: "p2"},
			Body: ocal.If{
				Cond: ocal.Prim{Op: ocal.OpEq, Args: []ocal.Expr{
					ocal.Proj{E: ocal.Var{Name: "x"}, I: 1}, ocal.Proj{E: ocal.Var{Name: "y"}, I: 1}}},
				Then: ocal.Single{E: ocal.Tup{Elems: []ocal.Expr{ocal.Var{Name: "x"}, ocal.Var{Name: "y"}}}},
				Else: ocal.Empty{}}}}}
	hashed := ocal.App{
		Fn: ocal.FlatMap{Fn: join},
		Arg: ocal.App{Fn: ocal.ZipLists{N: 2}, Arg: ocal.Tup{Elems: []ocal.Expr{
			ocal.App{Fn: ocal.PartitionF{S: ocal.SymP("s")}, Arg: ocal.Var{Name: "R"}},
			ocal.App{Fn: ocal.PartitionF{S: ocal.SymP("s")}, Arg: ocal.Var{Name: "S"}},
		}}},
	}
	f := func(seed int64, s uint8) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func(n int) ocal.List {
			l := make(ocal.List, n)
			for i := range l {
				l[i] = ocal.Tuple{ocal.Int(int64(r.Intn(8))), ocal.Int(int64(r.Intn(100)))}
			}
			return l
		}
		R, S := mk(r.Intn(12)), mk(r.Intn(12))
		in := map[string]ocal.Value{"R": R, "S": S}
		a, err := Eval(naiveJoin(), in, nil)
		if err != nil {
			return false
		}
		b, err := Eval(hashed, in, map[string]int64{"s": int64(s%7) + 1})
		if err != nil {
			return false
		}
		return multisetEq(a.(ocal.List), b.(ocal.List))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func multisetEq(a, b ocal.List) bool {
	if len(a) != len(b) {
		return false
	}
	counts := map[string]int{}
	for _, v := range a {
		counts[v.String()]++
	}
	for _, v := range b {
		counts[v.String()]--
	}
	for _, c := range counts {
		if c != 0 {
			return false
		}
	}
	return true
}

func TestPrimSemantics(t *testing.T) {
	cases := []struct {
		e    ocal.Expr
		want ocal.Value
	}{
		{ocal.Prim{Op: ocal.OpAdd, Args: []ocal.Expr{ocal.IntLit{V: 2}, ocal.IntLit{V: 3}}}, ocal.Int(5)},
		{ocal.Prim{Op: ocal.OpSub, Args: []ocal.Expr{ocal.IntLit{V: 2}, ocal.IntLit{V: 3}}}, ocal.Int(-1)},
		{ocal.Prim{Op: ocal.OpMul, Args: []ocal.Expr{ocal.IntLit{V: 2}, ocal.IntLit{V: 3}}}, ocal.Int(6)},
		{ocal.Prim{Op: ocal.OpDiv, Args: []ocal.Expr{ocal.IntLit{V: 7}, ocal.IntLit{V: 2}}}, ocal.Int(3)},
		{ocal.Prim{Op: ocal.OpMod, Args: []ocal.Expr{ocal.IntLit{V: 7}, ocal.IntLit{V: 2}}}, ocal.Int(1)},
		{ocal.Prim{Op: ocal.OpLe, Args: []ocal.Expr{ocal.IntLit{V: 2}, ocal.IntLit{V: 2}}}, ocal.Bool(true)},
		{ocal.Prim{Op: ocal.OpLt, Args: []ocal.Expr{ocal.IntLit{V: 2}, ocal.IntLit{V: 2}}}, ocal.Bool(false)},
		{ocal.Prim{Op: ocal.OpNot, Args: []ocal.Expr{ocal.BoolLit{V: false}}}, ocal.Bool(true)},
		{ocal.Prim{Op: ocal.OpAnd, Args: []ocal.Expr{ocal.BoolLit{V: true}, ocal.BoolLit{V: false}}}, ocal.Bool(false)},
		{ocal.Prim{Op: ocal.OpOr, Args: []ocal.Expr{ocal.BoolLit{V: true}, ocal.BoolLit{V: false}}}, ocal.Bool(true)},
	}
	for i, c := range cases {
		got := mustEval(t, c.e, nil, nil)
		if !ocal.ValueEq(got, c.want) {
			t.Errorf("case %d: got %s want %s", i, got, c.want)
		}
	}
}

func TestHeadTailLength(t *testing.T) {
	L := ints(7, 8, 9)
	in := map[string]ocal.Value{"L": L}
	if got := mustEval(t, ocal.Prim{Op: ocal.OpHead, Args: []ocal.Expr{ocal.Var{Name: "L"}}}, in, nil); !ocal.ValueEq(got, ocal.Int(7)) {
		t.Errorf("head got %s", got)
	}
	if got := mustEval(t, ocal.Prim{Op: ocal.OpTail, Args: []ocal.Expr{ocal.Var{Name: "L"}}}, in, nil); !ocal.ValueEq(got, ints(8, 9)) {
		t.Errorf("tail got %s", got)
	}
	if got := mustEval(t, ocal.Prim{Op: ocal.OpLength, Args: []ocal.Expr{ocal.Var{Name: "L"}}}, in, nil); !ocal.ValueEq(got, ocal.Int(3)) {
		t.Errorf("length got %s", got)
	}
	// head/tail of empty are runtime errors (undefined per the paper).
	if _, err := Eval(ocal.Prim{Op: ocal.OpHead, Args: []ocal.Expr{ocal.Empty{}}}, nil, nil); err == nil {
		t.Error("head([]) should fail")
	}
	if _, err := Eval(ocal.Prim{Op: ocal.OpTail, Args: []ocal.Expr{ocal.Empty{}}}, nil, nil); err == nil {
		t.Error("tail([]) should fail")
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []ocal.Expr{
		ocal.Var{Name: "missing"},
		ocal.Prim{Op: ocal.OpDiv, Args: []ocal.Expr{ocal.IntLit{V: 1}, ocal.IntLit{V: 0}}},
		ocal.Prim{Op: ocal.OpMod, Args: []ocal.Expr{ocal.IntLit{V: 1}, ocal.IntLit{V: 0}}},
		ocal.App{Fn: ocal.IntLit{V: 1}, Arg: ocal.IntLit{V: 2}},
		ocal.Proj{E: ocal.IntLit{V: 1}, I: 1},
	}
	for i, e := range cases {
		if _, err := Eval(e, nil, nil); err == nil {
			t.Errorf("case %d (%s): expected error", i, ocal.String(e))
		}
	}
}

func TestLambdaDestructuring(t *testing.T) {
	swap := ocal.App{
		Fn:  ocal.Lam{Params: []string{"a", "b"}, Body: ocal.Tup{Elems: []ocal.Expr{ocal.Var{Name: "b"}, ocal.Var{Name: "a"}}}},
		Arg: ocal.Tup{Elems: []ocal.Expr{ocal.IntLit{V: 1}, ocal.IntLit{V: 2}}},
	}
	got := mustEval(t, swap, nil, nil)
	if !ocal.ValueEq(got, ocal.Tuple{ocal.Int(2), ocal.Int(1)}) {
		t.Errorf("got %s", got)
	}
}

func TestOrderInputsWrapperSemantics(t *testing.T) {
	// (\<x1,x2> -> length(x1 ++ x2))(if length(R) <= length(S) then <R,S> else <S,R>)
	// must equal length(R)+length(S) regardless of ordering.
	inner := ocal.Lam{Params: []string{"x1", "x2"},
		Body: ocal.Prim{Op: ocal.OpLength, Args: []ocal.Expr{
			ocal.Prim{Op: ocal.OpConcat, Args: []ocal.Expr{ocal.Var{Name: "x1"}, ocal.Var{Name: "x2"}}}}}}
	wrapped := ocal.App{Fn: inner, Arg: ocal.If{
		Cond: ocal.Prim{Op: ocal.OpLe, Args: []ocal.Expr{
			ocal.Prim{Op: ocal.OpLength, Args: []ocal.Expr{ocal.Var{Name: "R"}}},
			ocal.Prim{Op: ocal.OpLength, Args: []ocal.Expr{ocal.Var{Name: "S"}}}}},
		Then: ocal.Tup{Elems: []ocal.Expr{ocal.Var{Name: "R"}, ocal.Var{Name: "S"}}},
		Else: ocal.Tup{Elems: []ocal.Expr{ocal.Var{Name: "S"}, ocal.Var{Name: "R"}}},
	}}
	got := mustEval(t, wrapped, map[string]ocal.Value{"R": ints(1, 2, 3), "S": ints(4)}, nil)
	if !ocal.ValueEq(got, ocal.Int(4)) {
		t.Errorf("got %s", got)
	}
}

func TestZipStepViaUnfold(t *testing.T) {
	// unfoldR(z) zips equal-length lists.
	prog := ocal.App{Fn: ocal.UnfoldR{Fn: ocal.ZipStep{N: 2}},
		Arg: ocal.Tup{Elems: []ocal.Expr{ocal.Var{Name: "A"}, ocal.Var{Name: "B"}}}}
	got := mustEval(t, prog, map[string]ocal.Value{"A": ints(1, 2), "B": ints(10, 20)}, nil)
	want := ocal.List{ocal.Tuple{ocal.Int(1), ocal.Int(10)}, ocal.Tuple{ocal.Int(2), ocal.Int(20)}}
	if !ocal.ValueEq(got, want) {
		t.Errorf("got %s want %s", got, want)
	}
}
