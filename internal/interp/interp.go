// Package interp is the reference interpreter for OCAL. It defines the
// semantics of the language and serves as the equivalence oracle for the
// transformation rules: every rewrite OCAS performs must leave the
// interpreted meaning of the program unchanged, and the rule tests verify
// exactly that on randomized inputs.
package interp

import (
	"errors"
	"fmt"

	"ocas/internal/ocal"
)

// MaxUnfoldSteps guards unfoldR against non-productive step functions.
const MaxUnfoldSteps = 50_000_000

// val is a runtime value: either an ocal.Value or a function value.
type val interface{}

// funcVal is a function value (closure or builtin definition).
type funcVal struct {
	apply func(ocal.Value) (val, error)
}

// env is a persistent binding environment.
type env struct {
	name   string
	v      val
	parent *env
}

func (e *env) lookup(name string) (val, bool) {
	for n := e; n != nil; n = n.parent {
		if n.name == name {
			return n.v, true
		}
	}
	return nil, false
}

func (e *env) bind(name string, v val) *env {
	return &env{name: name, v: v, parent: e}
}

// Counters tallies the interpreter's work: how many expressions were
// evaluated, functions applied, primitives executed, and combinator steps
// taken. They make interpreter runs comparable (a rewritten program should
// do the same job in fewer steps) and are reported by ocalrun -json.
type Counters struct {
	Evals         int64 `json:"evals"`
	Applies       int64 `json:"applies"`
	Prims         int64 `json:"prims"`
	ForSteps      int64 `json:"forSteps"`
	FoldSteps     int64 `json:"foldSteps"`
	UnfoldSteps   int64 `json:"unfoldSteps"`
	TreeFoldSteps int64 `json:"treeFoldSteps"`
}

// Interp evaluates OCAL expressions with a fixed binding of symbolic
// parameters (block sizes etc.).
type Interp struct {
	params map[string]int64
	count  Counters
}

// Counters returns the work tallied so far.
func (it *Interp) Counters() Counters { return it.count }

// New returns an interpreter that resolves symbolic parameters via params
// (missing parameters default to 1).
func New(params map[string]int64) *Interp {
	return &Interp{params: params}
}

// Eval evaluates a closed, first-order expression: inputs provides the free
// variables, and the result must be a data value (not a function).
func (it *Interp) Eval(e ocal.Expr, inputs map[string]ocal.Value) (ocal.Value, error) {
	var en *env
	for k, v := range inputs {
		en = en.bind(k, v)
	}
	r, err := it.eval(e, en)
	if err != nil {
		return nil, err
	}
	dv, ok := r.(ocal.Value)
	if !ok {
		return nil, fmt.Errorf("interp: program evaluated to a function, not a value")
	}
	return dv, nil
}

// Eval evaluates e with a fresh interpreter and the given inputs and params.
func Eval(e ocal.Expr, inputs map[string]ocal.Value, params map[string]int64) (ocal.Value, error) {
	return New(params).Eval(e, inputs)
}

func (it *Interp) param(p ocal.Param) int64 {
	n := p.Bind(it.params)
	if n < 1 {
		return 1
	}
	return n
}

func (it *Interp) eval(e ocal.Expr, en *env) (val, error) {
	it.count.Evals++
	switch t := e.(type) {
	case ocal.Var:
		v, ok := en.lookup(t.Name)
		if !ok {
			return nil, fmt.Errorf("interp: unbound variable %q", t.Name)
		}
		return v, nil
	case ocal.IntLit:
		return ocal.Int(t.V), nil
	case ocal.BoolLit:
		return ocal.Bool(t.V), nil
	case ocal.StrLit:
		return ocal.Str(t.V), nil
	case ocal.Lam:
		return it.makeClosure(t, en), nil
	case ocal.App:
		fn, err := it.eval(t.Fn, en)
		if err != nil {
			return nil, err
		}
		f, ok := fn.(*funcVal)
		if !ok {
			return nil, fmt.Errorf("interp: applying non-function %s", ocal.String(t.Fn))
		}
		arg, err := it.evalValue(t.Arg, en)
		if err != nil {
			return nil, err
		}
		it.count.Applies++
		return f.apply(arg)
	case ocal.Tup:
		out := make(ocal.Tuple, len(t.Elems))
		for i, el := range t.Elems {
			v, err := it.evalValue(el, en)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	case ocal.Proj:
		v, err := it.evalValue(t.E, en)
		if err != nil {
			return nil, err
		}
		tup, ok := v.(ocal.Tuple)
		if !ok {
			return nil, fmt.Errorf("interp: projection .%d on non-tuple %s", t.I, v)
		}
		if t.I < 1 || t.I > len(tup) {
			return nil, fmt.Errorf("interp: projection .%d out of range (arity %d)", t.I, len(tup))
		}
		return tup[t.I-1], nil
	case ocal.Single:
		v, err := it.evalValue(t.E, en)
		if err != nil {
			return nil, err
		}
		return ocal.List{v}, nil
	case ocal.Empty:
		return ocal.List{}, nil
	case ocal.If:
		c, err := it.evalValue(t.Cond, en)
		if err != nil {
			return nil, err
		}
		b, ok := c.(ocal.Bool)
		if !ok {
			return nil, fmt.Errorf("interp: if condition is not boolean: %s", c)
		}
		if bool(b) {
			return it.eval(t.Then, en)
		}
		return it.eval(t.Else, en)
	case ocal.Prim:
		return it.evalPrim(t, en)
	case ocal.FlatMap:
		fn, err := it.evalFunc(t.Fn, en)
		if err != nil {
			return nil, err
		}
		return &funcVal{apply: func(arg ocal.Value) (val, error) {
			l, ok := arg.(ocal.List)
			if !ok {
				return nil, fmt.Errorf("interp: flatMap over non-list %s", arg)
			}
			var out ocal.List
			for _, v := range l {
				r, err := fn.apply(v)
				if err != nil {
					return nil, err
				}
				rl, ok := r.(ocal.List)
				if !ok {
					return nil, fmt.Errorf("interp: flatMap body must return a list")
				}
				out = append(out, rl...)
			}
			return out, nil
		}}, nil
	case ocal.FoldL:
		fn, err := it.evalFunc(t.Fn, en)
		if err != nil {
			return nil, err
		}
		init, err := it.evalValue(t.Init, en)
		if err != nil {
			return nil, err
		}
		return &funcVal{apply: func(arg ocal.Value) (val, error) {
			l, ok := arg.(ocal.List)
			if !ok {
				return nil, fmt.Errorf("interp: foldL over non-list %s", arg)
			}
			acc := init
			for _, v := range l {
				it.count.FoldSteps++
				r, err := fn.apply(ocal.Tuple{acc, v})
				if err != nil {
					return nil, err
				}
				rv, ok := r.(ocal.Value)
				if !ok {
					return nil, errors.New("interp: foldL step returned a function")
				}
				acc = rv
			}
			return acc, nil
		}}, nil
	case ocal.For:
		return it.evalFor(t, en)
	case ocal.TreeFold:
		return it.evalTreeFold(t, en)
	case ocal.UnfoldR:
		return it.evalUnfoldR(t, en)
	case ocal.Mrg:
		return mrgStep(), nil
	case ocal.ZipStep:
		return zipStep(t.N), nil
	case ocal.FuncPow:
		return it.evalFuncPow(t, en)
	case ocal.PartitionF:
		s := it.param(t.S)
		return &funcVal{apply: func(arg ocal.Value) (val, error) {
			l, ok := arg.(ocal.List)
			if !ok {
				return nil, fmt.Errorf("interp: partition over non-list %s", arg)
			}
			buckets := make([]ocal.List, s)
			for _, v := range l {
				key := v
				if tup, ok := v.(ocal.Tuple); ok && len(tup) > 0 {
					key = tup[0]
				}
				b := ocal.Hash(key) % uint64(s)
				buckets[b] = append(buckets[b], v)
			}
			out := make(ocal.List, s)
			for i, b := range buckets {
				out[i] = b
			}
			return out, nil
		}}, nil
	case ocal.ZipLists:
		return &funcVal{apply: func(arg ocal.Value) (val, error) {
			tup, ok := arg.(ocal.Tuple)
			if !ok || len(tup) != t.N {
				return nil, fmt.Errorf("interp: zip expects a %d-tuple", t.N)
			}
			lists := make([]ocal.List, t.N)
			n := -1
			for i, v := range tup {
				l, ok := v.(ocal.List)
				if !ok {
					return nil, fmt.Errorf("interp: zip component %d is not a list", i+1)
				}
				if n == -1 {
					n = len(l)
				} else if len(l) != n {
					return nil, fmt.Errorf("interp: zip over ragged lists (%d vs %d)", n, len(l))
				}
				lists[i] = l
			}
			out := make(ocal.List, n)
			for i := 0; i < n; i++ {
				row := make(ocal.Tuple, t.N)
				for j := range lists {
					row[j] = lists[j][i]
				}
				out[i] = row
			}
			return out, nil
		}}, nil
	}
	return nil, fmt.Errorf("interp: cannot evaluate %T", e)
}

// evalValue evaluates e and requires a data value.
func (it *Interp) evalValue(e ocal.Expr, en *env) (ocal.Value, error) {
	v, err := it.eval(e, en)
	if err != nil {
		return nil, err
	}
	dv, ok := v.(ocal.Value)
	if !ok {
		return nil, fmt.Errorf("interp: expected a value, got a function (%s)", ocal.String(e))
	}
	return dv, nil
}

// evalFunc evaluates e and requires a function value.
func (it *Interp) evalFunc(e ocal.Expr, en *env) (*funcVal, error) {
	v, err := it.eval(e, en)
	if err != nil {
		return nil, err
	}
	f, ok := v.(*funcVal)
	if !ok {
		return nil, fmt.Errorf("interp: expected a function, got %v (%s)", v, ocal.String(e))
	}
	return f, nil
}

func (it *Interp) makeClosure(l ocal.Lam, en *env) *funcVal {
	return &funcVal{apply: func(arg ocal.Value) (val, error) {
		ne := en
		if len(l.Params) == 1 {
			ne = ne.bind(l.Params[0], arg)
		} else {
			tup, ok := arg.(ocal.Tuple)
			if !ok || len(tup) != len(l.Params) {
				return nil, fmt.Errorf("interp: lambda expects a %d-tuple, got %s", len(l.Params), arg)
			}
			for i, p := range l.Params {
				ne = ne.bind(p, tup[i])
			}
		}
		return it.eval(l.Body, ne)
	}}
}

func (it *Interp) evalFor(f ocal.For, en *env) (val, error) {
	src, err := it.evalValue(f.Src, en)
	if err != nil {
		return nil, err
	}
	l, ok := src.(ocal.List)
	if !ok {
		return nil, fmt.Errorf("interp: for source is not a list: %s", src)
	}
	k := it.param(f.K)
	var out ocal.List
	step := func(x ocal.Value) error {
		it.count.ForSteps++
		r, err := it.evalValue(f.Body, en.bind(f.X, x))
		if err != nil {
			return err
		}
		rl, ok := r.(ocal.List)
		if !ok {
			return fmt.Errorf("interp: for body must produce a list, got %s", r)
		}
		out = append(out, rl...)
		return nil
	}
	if f.K.IsOne() {
		for _, v := range l {
			if err := step(v); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	for i := 0; i < len(l); i += int(k) {
		j := i + int(k)
		if j > len(l) {
			j = len(l)
		}
		block := make(ocal.List, j-i)
		copy(block, l[i:j])
		if err := step(block); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (it *Interp) evalTreeFold(t ocal.TreeFold, en *env) (val, error) {
	k := int(it.param(t.K))
	if k < 2 {
		k = 2
	}
	init, err := it.evalValue(t.Init, en)
	if err != nil {
		return nil, err
	}
	fn, err := it.evalFunc(t.Fn, en)
	if err != nil {
		return nil, err
	}
	return &funcVal{apply: func(arg ocal.Value) (val, error) {
		seed, ok := arg.(ocal.List)
		if !ok {
			return nil, fmt.Errorf("interp: treeFold over non-list %s", arg)
		}
		if len(seed) == 0 {
			return init, nil
		}
		queue := make([]ocal.Value, len(seed))
		copy(queue, seed)
		for len(queue) > 1 {
			take := k
			if take > len(queue) {
				take = len(queue)
			}
			group := make(ocal.Tuple, k)
			for i := 0; i < k; i++ {
				if i < take {
					group[i] = queue[i]
				} else {
					group[i] = init
				}
			}
			queue = queue[take:]
			it.count.TreeFoldSteps++
			r, err := fn.apply(group)
			if err != nil {
				return nil, err
			}
			rv, ok := r.(ocal.Value)
			if !ok {
				return nil, errors.New("interp: treeFold step returned a function")
			}
			queue = append(queue, rv)
		}
		return queue[0], nil
	}}, nil
}

func (it *Interp) evalUnfoldR(u ocal.UnfoldR, en *env) (val, error) {
	fn, err := it.evalFunc(u.Fn, en)
	if err != nil {
		return nil, err
	}
	return &funcVal{apply: func(arg ocal.Value) (val, error) {
		state, ok := arg.(ocal.Tuple)
		if !ok {
			return nil, fmt.Errorf("interp: unfoldR state must be a tuple of lists, got %s", arg)
		}
		var out ocal.List
		for steps := 0; ; steps++ {
			if steps > MaxUnfoldSteps {
				return nil, errors.New("interp: unfoldR exceeded step limit (non-productive step?)")
			}
			done := true
			for _, c := range state {
				l, ok := c.(ocal.List)
				if !ok {
					return nil, fmt.Errorf("interp: unfoldR state component is not a list: %s", c)
				}
				if len(l) > 0 {
					done = false
					break
				}
			}
			if done {
				return out, nil
			}
			it.count.UnfoldSteps++
			r, err := fn.apply(state)
			if err != nil {
				return nil, err
			}
			pair, ok := r.(ocal.Tuple)
			if !ok || len(pair) != 2 {
				return nil, errors.New("interp: unfoldR step must return <chunk, state>")
			}
			chunk, ok := pair[0].(ocal.List)
			if !ok {
				return nil, errors.New("interp: unfoldR chunk must be a list")
			}
			next, ok := pair[1].(ocal.Tuple)
			if !ok {
				return nil, errors.New("interp: unfoldR next state must be a tuple")
			}
			if len(chunk) == 0 && totalLen(next) >= totalLen(state) {
				return nil, errors.New("interp: unfoldR step made no progress")
			}
			out = append(out, chunk...)
			state = next
		}
	}}, nil
}

func totalLen(t ocal.Tuple) int {
	n := 0
	for _, c := range t {
		if l, ok := c.(ocal.List); ok {
			n += len(l)
		}
	}
	return n
}

func (it *Interp) evalFuncPow(p ocal.FuncPow, en *env) (val, error) {
	if _, isMrg := p.Fn.(ocal.Mrg); isMrg {
		return kWayMergeStep(1 << p.K), nil
	}
	fn, err := it.evalFunc(p.Fn, en)
	if err != nil {
		return nil, err
	}
	n := 1 << p.K
	return &funcVal{apply: func(arg ocal.Value) (val, error) {
		tup, ok := arg.(ocal.Tuple)
		if !ok || len(tup) != n {
			return nil, fmt.Errorf("interp: funcPow[%d] expects a %d-tuple", p.K, n)
		}
		return applyBalanced(fn, tup)
	}}, nil
}

// applyBalanced applies the binary f over args as a balanced tree
// (Figure 2's funcPow definition).
func applyBalanced(f *funcVal, args ocal.Tuple) (val, error) {
	if len(args) == 1 {
		return args[0], nil
	}
	half := len(args) / 2
	lv, err := applyBalanced(f, args[:half])
	if err != nil {
		return nil, err
	}
	rv, err := applyBalanced(f, args[half:])
	if err != nil {
		return nil, err
	}
	l, ok1 := lv.(ocal.Value)
	r, ok2 := rv.(ocal.Value)
	if !ok1 || !ok2 {
		return nil, errors.New("interp: funcPow subresult is a function")
	}
	return f.apply(ocal.Tuple{l, r})
}

// mrgStep implements mrg of Figure 2: emit the smaller head of two sorted
// lists.
func mrgStep() *funcVal {
	return kWayMergeStep(2)
}

// kWayMergeStep is the 2^k-way merge step used as the code-generator plugin
// for funcPow[k](mrg) (Section 7.2): among the non-empty lists, output the
// minimum head and advance that list.
func kWayMergeStep(n int) *funcVal {
	return &funcVal{apply: func(arg ocal.Value) (val, error) {
		state, ok := arg.(ocal.Tuple)
		if !ok || len(state) != n {
			return nil, fmt.Errorf("interp: merge step expects a %d-tuple of lists", n)
		}
		best := -1
		var bestV ocal.Value
		for i, c := range state {
			l, ok := c.(ocal.List)
			if !ok {
				return nil, fmt.Errorf("interp: merge state component is not a list")
			}
			if len(l) == 0 {
				continue
			}
			if best == -1 || ocal.ValueCompare(l[0], bestV) < 0 {
				best, bestV = i, l[0]
			}
		}
		if best == -1 {
			return ocal.Tuple{ocal.List{}, state}, nil
		}
		next := make(ocal.Tuple, n)
		copy(next, state)
		next[best] = state[best].(ocal.List)[1:]
		return ocal.Tuple{ocal.List{bestV}, next}, nil
	}}
}

// zipStep implements z of Figure 2.
func zipStep(n int) *funcVal {
	return &funcVal{apply: func(arg ocal.Value) (val, error) {
		state, ok := arg.(ocal.Tuple)
		if !ok || len(state) != n {
			return nil, fmt.Errorf("interp: z expects a %d-tuple of lists", n)
		}
		row := make(ocal.Tuple, n)
		next := make(ocal.Tuple, n)
		for i, c := range state {
			l, ok := c.(ocal.List)
			if !ok {
				return nil, fmt.Errorf("interp: z state component is not a list")
			}
			if len(l) == 0 {
				return nil, errors.New("interp: z applied to ragged lists (head of empty list)")
			}
			row[i] = l[0]
			next[i] = l[1:]
		}
		return ocal.Tuple{ocal.List{row}, next}, nil
	}}
}

func (it *Interp) evalPrim(p ocal.Prim, en *env) (val, error) {
	it.count.Prims++
	args := make([]ocal.Value, len(p.Args))
	for i, a := range p.Args {
		v, err := it.evalValue(a, en)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	switch p.Op {
	case ocal.OpEq:
		return ocal.Bool(ocal.ValueEq(args[0], args[1])), nil
	case ocal.OpNe:
		return ocal.Bool(!ocal.ValueEq(args[0], args[1])), nil
	case ocal.OpLt:
		return ocal.Bool(ocal.ValueCompare(args[0], args[1]) < 0), nil
	case ocal.OpLe:
		return ocal.Bool(ocal.ValueCompare(args[0], args[1]) <= 0), nil
	case ocal.OpGt:
		return ocal.Bool(ocal.ValueCompare(args[0], args[1]) > 0), nil
	case ocal.OpGe:
		return ocal.Bool(ocal.ValueCompare(args[0], args[1]) >= 0), nil
	case ocal.OpAdd, ocal.OpSub, ocal.OpMul, ocal.OpDiv, ocal.OpMod:
		a, ok1 := args[0].(ocal.Int)
		b, ok2 := args[1].(ocal.Int)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("interp: arithmetic on non-integers %s, %s", args[0], args[1])
		}
		switch p.Op {
		case ocal.OpAdd:
			return a + b, nil
		case ocal.OpSub:
			return a - b, nil
		case ocal.OpMul:
			return a * b, nil
		case ocal.OpDiv:
			if b == 0 {
				return nil, errors.New("interp: division by zero")
			}
			return a / b, nil
		default:
			if b == 0 {
				return nil, errors.New("interp: modulo by zero")
			}
			return a % b, nil
		}
	case ocal.OpAnd:
		return ocal.Bool(bool(args[0].(ocal.Bool)) && bool(args[1].(ocal.Bool))), nil
	case ocal.OpOr:
		return ocal.Bool(bool(args[0].(ocal.Bool)) || bool(args[1].(ocal.Bool))), nil
	case ocal.OpNot:
		b, ok := args[0].(ocal.Bool)
		if !ok {
			return nil, fmt.Errorf("interp: not on non-boolean %s", args[0])
		}
		return ocal.Bool(!bool(b)), nil
	case ocal.OpConcat:
		a, ok1 := args[0].(ocal.List)
		b, ok2 := args[1].(ocal.List)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("interp: ++ on non-lists")
		}
		out := make(ocal.List, 0, len(a)+len(b))
		out = append(out, a...)
		out = append(out, b...)
		return out, nil
	case ocal.OpHead:
		l, ok := args[0].(ocal.List)
		if !ok || len(l) == 0 {
			return nil, errors.New("interp: head of empty or non-list")
		}
		return l[0], nil
	case ocal.OpTail:
		l, ok := args[0].(ocal.List)
		if !ok || len(l) == 0 {
			return nil, errors.New("interp: tail of empty or non-list")
		}
		return l[1:], nil
	case ocal.OpLength:
		l, ok := args[0].(ocal.List)
		if !ok {
			return nil, errors.New("interp: length of non-list")
		}
		return ocal.Int(len(l)), nil
	case ocal.OpHash:
		return ocal.Int(ocal.Hash(args[0]) & 0x7fffffffffffffff), nil
	}
	return nil, fmt.Errorf("interp: unknown primitive %v", p.Op)
}
