package interp

import (
	"fmt"

	"ocas/internal/ocal"
)

// Func is a compiled OCAL function value usable from the execution engine
// (e.g. an unfoldR step applied once per streamed element).
type Func func(ocal.Value) (ocal.Value, error)

// CompileFunc evaluates a function-valued expression (lambda or definition)
// once and returns a reusable closure over it.
func CompileFunc(e ocal.Expr, params map[string]int64) (Func, error) {
	it := New(params)
	v, err := it.eval(e, nil)
	if err != nil {
		return nil, err
	}
	f, ok := v.(*funcVal)
	if !ok {
		return nil, fmt.Errorf("interp: %s is not a function", ocal.String(e))
	}
	return func(arg ocal.Value) (ocal.Value, error) {
		r, err := f.apply(arg)
		if err != nil {
			return nil, err
		}
		dv, ok := r.(ocal.Value)
		if !ok {
			return nil, fmt.Errorf("interp: function returned a function")
		}
		return dv, nil
	}, nil
}
