// Flash join: the same specification synthesized for two different
// hierarchies — output on a second hard disk versus output on a flash
// drive — showing how OCAS adapts cost formulas and parameter choices to
// the device technology (Section 7.2's write-out experiments).
package main

import (
	"fmt"
	"log"
	"strings"

	"ocas/internal/core"
	"ocas/internal/memory"
	"ocas/internal/ocal"
)

func main() {
	// Relational product (join condition "true"): write cost dominates.
	spec := core.JoinSpec(false)
	task := func(h *memory.Hierarchy, out string) (*core.Synthesis, error) {
		s := &core.Synthesizer{H: h, MaxDepth: 6, MaxSpace: 1500}
		return s.Synthesize(core.Task{
			Spec:      spec,
			InputLoc:  map[string]string{"R": "hdd", "S": "hdd"},
			InputRows: map[string]int64{"R": 1 << 10, "S": 1 << 14},
			Output:    out,
		})
	}

	hdd, err := task(memory.TwoHDD(1*memory.MiB), "hdd2")
	if err != nil {
		log.Fatal(err)
	}
	ssd, err := task(memory.HDDFlash(1*memory.MiB), "ssd")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("specification:", ocal.String(spec.Prog))
	fmt.Println()
	fmt.Println("writing to a second hard disk:")
	fmt.Println("    algorithm: ", ocal.String(hdd.Best.Expr))
	fmt.Println("    derivation:", strings.Join(hdd.Best.Steps, " -> "))
	fmt.Printf("    estimate:   %.4g s\n\n", hdd.Best.Seconds)

	fmt.Println("writing to a flash drive (erase-before-write, faster sequential writes):")
	fmt.Println("    algorithm: ", ocal.String(ssd.Best.Expr))
	fmt.Println("    derivation:", strings.Join(ssd.Best.Steps, " -> "))
	fmt.Printf("    estimate:   %.4g s\n\n", ssd.Best.Seconds)

	if ssd.Best.Seconds < hdd.Best.Seconds {
		fmt.Printf("OCAS estimates flash %.1fx faster: InitCom models erasure per %s write block instead of seeks, and UnitTr is 4x cheaper.\n",
			hdd.Best.Seconds/ssd.Best.Seconds, "256K")
	}
}
