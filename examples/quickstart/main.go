// Quickstart: synthesize the Block Nested Loops Join of Example 1.
//
// The input is the naive, memory-hierarchy-oblivious join
//
//	for (x <- R) for (y <- S) if x.1 == y.1 then [<x, y>] else []
//
// and a hierarchy with one hard disk under RAM. OCAS derives the blocked,
// sequential-scan nested loops join, tunes the block sizes to the RAM
// budget, and emits C code.
package main

import (
	"fmt"
	"log"
	"strings"

	"ocas/internal/codegen"
	"ocas/internal/core"
	"ocas/internal/memory"
	"ocas/internal/ocal"
)

func main() {
	prog := ocal.MustParse(`
-- Example 1 of the paper: the intuitive join.
for (x <- R) for (y <- S) if x.1 == y.1 then [<x, y>] else []`)

	relT := ocal.TList(ocal.TTuple(ocal.TInt, ocal.TInt))
	spec := core.Spec{
		Name: "quickstart-join",
		Prog: prog,
		Inputs: []core.InputSpec{
			{Name: "R", Type: relT, Arity: 2},
			{Name: "S", Type: relT, Arity: 2},
		},
		Commutative: true,
	}

	h := memory.HDDRAM(8 * memory.MiB)
	synth := &core.Synthesizer{H: h, MaxDepth: 6, MaxSpace: 2000}
	res, err := synth.Synthesize(core.Task{
		Spec:      spec,
		InputLoc:  map[string]string{"R": "hdd", "S": "hdd"},
		InputRows: map[string]int64{"R": 4 << 20, "S": 1 << 18},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("naive specification:")
	fmt.Println("   ", ocal.String(prog))
	fmt.Printf("    estimated cost: %.4g s\n\n", res.SpecSeconds)

	fmt.Println("synthesized algorithm (canonical BNL join):")
	fmt.Println("   ", ocal.String(res.Best.Expr))
	fmt.Println("    derivation:    ", strings.Join(res.Best.Steps, " -> "))
	fmt.Println("    parameters:    ", res.Best.Params)
	fmt.Printf("    estimated cost: %.4g s (%.0fx faster)\n\n",
		res.Best.Seconds, res.SpecSeconds/res.Best.Seconds)

	csrc, err := codegen.Generate(res.Best.Expr, codegen.Options{
		FuncName:   "bnl_join",
		Params:     res.Best.Params,
		InputArity: map[string]int{"R": 2, "S": 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("generated C:")
	fmt.Println(csrc)
}
