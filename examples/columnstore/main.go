// Column store: synthesize and execute a 5-column column-store read
// (unfoldR(z) over the column files) and an aggregation (the avg definition
// of Figure 2), two of the Table 1 workloads.
package main

import (
	"fmt"
	"log"
	"strings"

	"ocas/internal/core"
	"ocas/internal/exec"
	"ocas/internal/memory"
	"ocas/internal/ocal"
	"ocas/internal/storage"
	"ocas/internal/workload"
)

func main() {
	const cols = 5
	rows := int64(300_000)
	h := memory.HDDRAM(4 * memory.MiB)

	// --- Column-store read. ---
	spec := core.ColumnReadSpec(cols)
	task := core.Task{Spec: spec, InputLoc: map[string]string{}, InputRows: map[string]int64{}}
	for _, in := range spec.Inputs {
		task.InputLoc[in.Name] = "hdd"
		task.InputRows[in.Name] = rows
	}
	synth := &core.Synthesizer{H: h, MaxDepth: 2, MaxSpace: 200}
	res, err := synth.Synthesize(task)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("column read spec:", ocal.String(spec.Prog))
	fmt.Println("synthesized:     ", ocal.String(res.Best.Expr))
	fmt.Println("derivation:      ", strings.Join(res.Best.Steps, " -> "))
	fmt.Printf("estimate:         %.4g s (spec %.4g s)\n\n", res.Best.Seconds, res.SpecSeconds)

	sim := storage.NewSim(h)
	sim.DefaultCPU()
	dev, err := sim.Device("hdd")
	if err != nil {
		log.Fatal(err)
	}
	inputs := map[string]*exec.Table{}
	for i, in := range spec.Inputs {
		t, err := exec.NewTable(dev, 1, rows+8)
		if err != nil {
			log.Fatal(err)
		}
		if err := t.Preload(workload.Column(rows, int64(i))); err != nil {
			log.Fatal(err)
		}
		inputs[in.Name] = t
	}
	sink := &exec.Sink{Sim: sim}
	plan, err := exec.Lower(res.Best.Expr, exec.LowerOpts{
		Sim: sim, Inputs: inputs, Params: res.Best.Params,
		Scratch: dev, Sink: sink, RAMBytes: h.Root.Size,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := plan.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reconstructed %d rows of %d columns in %.4g simulated seconds\n\n",
		sink.RowsWritten, cols, sim.Clock.Seconds())

	// --- Aggregation (avg over the second attribute). ---
	agg := core.AggregationSpec()
	synth2 := &core.Synthesizer{H: h, MaxDepth: 3, MaxSpace: 300}
	res2, err := synth2.Synthesize(core.Task{
		Spec:      agg,
		InputLoc:  map[string]string{"R": "hdd"},
		InputRows: map[string]int64{"R": rows},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("aggregation spec:", ocal.String(agg.Prog))
	fmt.Println("synthesized:     ", ocal.String(res2.Best.Expr))
	fmt.Printf("estimate:         %.4g s (spec %.4g s)\n", res2.Best.Seconds, res2.SpecSeconds)

	sim2 := storage.NewSim(h)
	sim2.DefaultCPU()
	dev2, _ := sim2.Device("hdd")
	rel, err := exec.NewTable(dev2, 2, rows+8)
	if err != nil {
		log.Fatal(err)
	}
	if err := rel.Preload(workload.UniformPairs(rows, 1000, 9)); err != nil {
		log.Fatal(err)
	}
	plan2, err := exec.Lower(res2.Best.Expr, exec.LowerOpts{
		Sim: sim2, Inputs: map[string]*exec.Table{"R": rel},
		Params: res2.Best.Params, Scratch: dev2, Sink: &exec.Sink{Sim: sim2},
		RAMBytes: h.Root.Size,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := plan2.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aggregated %d rows in %.4g simulated seconds; accumulator = %s\n",
		rows, sim2.Clock.Seconds(), plan2.Result)
}
