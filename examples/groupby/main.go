// Group-by: streaming aggregation over a key-sorted relation. The naive
// specification is a one-pass unfoldR whose state is the remaining input:
// each step either merges the first two tuples when their keys match or
// emits a completed group. OCAS recognizes that with the output written
// back to disk the transfers dominate, and derives the blocked variant
// (big sequential reads, buffered writes) with tuned block sizes.
//
// The directory's query.ocal/request.json pair is the same scenario in the
// service smoke corpus: POST request.json to ocasd (or run
// `ocas -prog query.ocal -json ...`) to get this plan as JSON.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"strings"

	"ocas/internal/core"
	"ocas/internal/interp"
	"ocas/internal/memory"
	"ocas/internal/ocal"
)

const groupbySrc = `
-- streaming group-by: sum values per key of a key-sorted relation
unfoldR(\g ->
  if length(tail(g.1)) == 0 then <[head(g.1)], <[]>>
  else if head(g.1).1 == head(tail(g.1)).1
  then <[], <[<head(g.1).1, head(g.1).2 + head(tail(g.1)).2>] ++ tail(tail(g.1))>>
  else <[head(g.1)], <tail(g.1)>>)(<R>)`

func main() {
	prog, err := ocal.ParseFile(groupbySrc)
	if err != nil {
		log.Fatal(err)
	}

	// Correctness first: evaluate the specification on a small sorted
	// relation and compare against a plain map-based group-by.
	rng := rand.New(rand.NewSource(7))
	var rel ocal.List
	want := map[int64]int64{}
	var keys []int64
	key := int64(0)
	for i := 0; i < 500; i++ {
		if rng.Intn(3) == 0 {
			key++
		}
		v := int64(rng.Intn(100))
		rel = append(rel, ocal.Tuple{ocal.Int(key), ocal.Int(v)})
		if _, seen := want[key]; !seen {
			keys = append(keys, key)
		}
		want[key] += v
	}
	got, err := interp.Eval(prog, map[string]ocal.Value{"R": rel}, nil)
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	groups := got.(ocal.List)
	if len(groups) != len(keys) {
		log.Fatalf("got %d groups, want %d", len(groups), len(keys))
	}
	for i, k := range keys {
		g := groups[i].(ocal.Tuple)
		if int64(g[0].(ocal.Int)) != k || int64(g[1].(ocal.Int)) != want[k] {
			log.Fatalf("group %d: got %s, want <%d, %d>", i, g, k, want[k])
		}
	}
	fmt.Printf("specification verified: %d rows -> %d groups\n\n", len(rel), len(groups))

	// Synthesis: 4M sorted rows on disk, aggregated groups written back.
	spec := core.Spec{
		Name:   "groupby",
		Prog:   prog,
		Inputs: []core.InputSpec{{Name: "R", Type: ocal.TList(ocal.TTuple(ocal.TInt, ocal.TInt)), Arity: 2}},
	}
	h := memory.HDDRAM(8 * memory.MiB)
	synth := &core.Synthesizer{H: h, MaxDepth: 5, MaxSpace: 2000}
	res, err := synth.Synthesize(core.Task{
		Spec:      spec,
		InputLoc:  map[string]string{"R": "hdd"},
		InputRows: map[string]int64{"R": 4 << 20},
		Output:    "hdd",
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("streaming aggregation spec:")
	fmt.Println("   ", ocal.String(prog))
	fmt.Printf("    estimated cost: %.4g s (tuple-at-a-time transfers)\n\n", res.SpecSeconds)
	fmt.Println("synthesized (blocked read, buffered write-back):")
	fmt.Println("   ", ocal.String(res.Best.Expr))
	fmt.Println("    derivation:    ", strings.Join(res.Best.Steps, " -> "))
	fmt.Println("    parameters:    ", res.Best.Params)
	fmt.Printf("    estimated cost: %.4g s (%.0fx faster)\n",
		res.Best.Seconds, res.SpecSeconds/res.Best.Seconds)
}
