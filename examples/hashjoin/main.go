// Hash join: derive the GRACE hash join from the naive join via the
// hash-part rule when RAM is scarce relative to the relations, and execute
// it on the simulator, cross-checking the result against a reference BNL.
package main

import (
	"fmt"
	"log"
	"strings"

	"ocas/internal/core"
	"ocas/internal/exec"
	"ocas/internal/memory"
	"ocas/internal/ocal"
	"ocas/internal/storage"
	"ocas/internal/workload"
)

func main() {
	spec := core.JoinSpec(true)
	h := memory.HDDRAM(2 * memory.MiB)
	rRows, sRows := int64(4<<20), int64(8<<20)

	synth := &core.Synthesizer{H: h, MaxDepth: 6, MaxSpace: 1500}
	res, err := synth.Synthesize(core.Task{
		Spec:      spec,
		InputLoc:  map[string]string{"R": "hdd", "S": "hdd"},
		InputRows: map[string]int64{"R": rRows, "S": sRows},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("specification:", ocal.String(spec.Prog))
	fmt.Println("synthesized:  ", ocal.String(res.Best.Expr))
	fmt.Println("derivation:   ", strings.Join(res.Best.Steps, " -> "))
	fmt.Println("parameters:   ", res.Best.Params)
	fmt.Printf("estimate:      %.4g s (spec: %.4g s)\n\n", res.Best.Seconds, res.SpecSeconds)

	// Execute on generated data.
	sim := storage.NewSim(h)
	sim.DefaultCPU()
	dev, err := sim.Device("hdd")
	if err != nil {
		log.Fatal(err)
	}
	load := func(n int64, seed int64) *exec.Table {
		t, err := exec.NewTable(dev, 2, n+8)
		if err != nil {
			log.Fatal(err)
		}
		if err := t.Preload(workload.UniformPairs(n, rRows*4, seed)); err != nil {
			log.Fatal(err)
		}
		return t
	}
	R, S := load(rRows, 1), load(sRows, 2)
	sink := &exec.Sink{Sim: sim}
	plan, err := exec.Lower(res.Best.Expr, exec.LowerOpts{
		Sim: sim, Inputs: map[string]*exec.Table{"R": R, "S": S},
		Params: res.Best.Params, Scratch: dev, Sink: sink, RAMBytes: h.Root.Size,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := plan.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed: %d result tuples in %.4g simulated seconds\n",
		sink.RowsWritten, sim.Clock.Seconds())

	// Cross-check cardinality against a plain blocked BNL on a fresh sim.
	sim2 := storage.NewSim(h)
	dev2, _ := sim2.Device("hdd")
	ld := func(n, seed int64) *exec.Table {
		t, _ := exec.NewTable(dev2, 2, n+8)
		_ = t.Preload(workload.UniformPairs(n, rRows*4, seed))
		return t
	}
	ref := &exec.Sink{Sim: sim2}
	bnl := &exec.BNLJoin{L: exec.TableInput(ld(rRows, 1)), R: exec.TableInput(ld(sRows, 2)),
		K1: 1 << 16, K2: 1 << 16, Pred: exec.EqPred(0, 0), EquiKeys: &[2]int{0, 0}}
	refProg := exec.NewProgram(bnl, exec.LowerOpts{Sim: sim2, Scratch: dev2, Sink: ref})
	if err := refProg.Run(); err != nil {
		log.Fatal(err)
	}
	if ref.RowsWritten != sink.RowsWritten {
		log.Fatalf("hash join result mismatch: %d vs %d", sink.RowsWritten, ref.RowsWritten)
	}
	fmt.Printf("cross-checked against reference BNL: %d tuples, identical\n", ref.RowsWritten)
}
