// External sort: derive the 2^k-way External Merge-Sort from the naive
// insertion sort foldL([], unfoldR(mrg)) (Section 7.2), then execute it on
// the storage simulator and verify the output is sorted.
package main

import (
	"fmt"
	"log"
	"strings"

	"ocas/internal/core"
	"ocas/internal/exec"
	"ocas/internal/memory"
	"ocas/internal/ocal"
	"ocas/internal/storage"
	"ocas/internal/workload"
)

func main() {
	spec := core.SortSpec()
	h := memory.HDDRAM(256 * memory.KiB)
	n := int64(200_000)

	synth := &core.Synthesizer{H: h, MaxDepth: 12, MaxSpace: 1500}
	res, err := synth.Synthesize(core.Task{
		Spec:      spec,
		InputLoc:  map[string]string{"R": "hdd"},
		InputRows: map[string]int64{"R": n},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("insertion-sort specification:", ocal.String(spec.Prog))
	fmt.Printf("    estimated cost: %.4g s (quadratic in n)\n\n", res.SpecSeconds)
	fmt.Println("synthesized:", ocal.String(res.Best.Expr))
	fmt.Println("    derivation:", strings.Join(res.Best.Steps, " -> "))
	fmt.Println("    parameters:", res.Best.Params)
	fmt.Printf("    estimated cost: %.4g s (n·log n)\n\n", res.Best.Seconds)

	// Execute the winner on the simulator.
	sim := storage.NewSim(h)
	sim.DefaultCPU()
	dev, err := sim.Device("hdd")
	if err != nil {
		log.Fatal(err)
	}
	in, err := exec.NewTable(dev, 1, n+8)
	if err != nil {
		log.Fatal(err)
	}
	if err := in.Preload(workload.Ints(n, 1<<30, 7)); err != nil {
		log.Fatal(err)
	}
	out, err := exec.NewTable(dev, 1, n+8)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := exec.Lower(res.Best.Expr, exec.LowerOpts{
		Sim: sim, Inputs: map[string]*exec.Table{"R": in},
		Params: res.Best.Params, Scratch: dev,
		Sink:     &exec.Sink{Out: out, Bout: 1 << 10, Sim: sim},
		RAMBytes: h.Root.Size,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := prog.Run(); err != nil {
		log.Fatal(err)
	}
	sorted := out.Flat()
	for i := int64(1); i < out.Rows(); i++ {
		if sorted[i] < sorted[i-1] {
			log.Fatalf("output not sorted at %d", i)
		}
	}
	srt := prog.Root.(*exec.ExtSort)
	fmt.Printf("executed %d-way merge sort on %d keys: %d passes, %.4g simulated seconds; output verified sorted\n",
		srt.Way, n, srt.Passes, sim.Clock.Seconds())
}
