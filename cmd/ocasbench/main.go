// Command ocasbench regenerates the paper's evaluation: Table 1, Figure 8,
// the cache-miss study and the accuracy study, printing paper-style tables.
//
// Usage:
//
//	ocasbench -table1            # the sixteen Table 1 rows
//	ocasbench -fig8              # estimated vs measured sweeps
//	ocasbench -cache             # loop-tiling cache-miss reduction
//	ocasbench -accuracy          # selectivity vs estimation accuracy
//	ocasbench -all -shrink 8     # everything, at 1/8 scale
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ocas/internal/experiments"
)

func main() {
	var (
		table1   = flag.Bool("table1", false, "regenerate Table 1")
		fig8     = flag.Bool("fig8", false, "regenerate Figure 8")
		cache    = flag.Bool("cache", false, "run the cache-miss study (Section 7.2)")
		accuracy = flag.Bool("accuracy", false, "run the accuracy study (Section 7.3)")
		all      = flag.Bool("all", false, "run everything")
		shrink   = flag.Int64("shrink", 1, "divide experiment sizes by this factor")
		strategy = flag.String("strategy", "exhaustive", "search strategy: exhaustive (full BFS) or beam (bounded frontier)")
		beam     = flag.Int("beam", 64, "beam width (-strategy beam only)")
		workers  = flag.Int("workers", 0, "synthesis worker pool size (0 = GOMAXPROCS)")
	)
	flag.Parse()
	cfg := experiments.Config{Shrink: *shrink, Strategy: *strategy, BeamWidth: *beam, Workers: *workers}
	ran := false
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "ocasbench:", err)
		os.Exit(1)
	}
	if _, err := cfg.SearchStrategy(); err != nil {
		fail(err)
	}
	if *table1 || *all {
		ran = true
		fmt.Printf("== Table 1 (shrink %d) ==\n", *shrink)
		start := time.Now()
		if _, err := experiments.RunTable1(cfg, os.Stdout); err != nil {
			fail(err)
		}
		fmt.Printf("-- total %.1fs\n\n", time.Since(start).Seconds())
	}
	if *fig8 || *all {
		ran = true
		fmt.Printf("== Figure 8 (shrink %d) ==\n", *shrink)
		if _, err := experiments.RunFigure8(cfg, os.Stdout); err != nil {
			fail(err)
		}
		fmt.Println()
	}
	if *cache || *all {
		ran = true
		fmt.Println("== Cache study (Section 7.2) ==")
		r, err := experiments.RunCacheStudy(cfg)
		if err != nil {
			fail(err)
		}
		fmt.Printf("untiled: %.4gs   tiled: %.4gs   miss reduction: %.1f%%\n",
			r.UntiledSecs, r.TiledSecs, 100*r.MissReduction)
		fmt.Printf("  untiled: opt=%.4g params=%v  %s\n", r.UntiledOpt, r.UntiledParams, r.UntiledProgram)
		fmt.Printf("  tiled:   opt=%.4g params=%v  %s\n", r.TiledOpt, r.TiledParams, r.TiledProgram)
		fmt.Println()
	}
	if *accuracy || *all {
		ran = true
		fmt.Println("== Accuracy study (Section 7.3) ==")
		pts, err := experiments.AccuracyStudy(cfg)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%12s %12s\n", "selectivity", "est/act")
		for _, p := range pts {
			fmt.Printf("%12.4f %12.3f\n", p.Selectivity, p.EstOverAct)
		}
		fmt.Println()
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
