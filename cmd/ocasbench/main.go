// Command ocasbench regenerates the paper's evaluation: Table 1, Figure 8,
// the cache-miss study and the accuracy study, printing paper-style tables.
//
// Usage:
//
//	ocasbench -table1            # the sixteen Table 1 rows
//	ocasbench -execpar           # executor scaling rows (1 vs 4 workers)
//	ocasbench -fig8              # estimated vs measured sweeps
//	ocasbench -cache             # loop-tiling cache-miss reduction
//	ocasbench -accuracy          # selectivity vs estimation accuracy
//	ocasbench -ingest            # durable-catalog ingest + scan differential
//	ocasbench -fused             # fused vs interpreted executor backends
//	ocasbench -columnar          # columnar batch layout over durable chains
//	ocasbench -all -shrink 8     # everything, at 1/8 scale
//
// Further knobs: -strategy exhaustive|beam with -beam N, -workers N for the
// synthesis pool, -templates for the template-tier warm rows, -regress PCT
// for the -baseline gate. -cpuprofile FILE and -memprofile FILE write pprof
// profiles of the run (the CPU profile covers the experiments; the heap
// profile snapshots after a final GC).
//
// With -json the machine-readable bench report (per-experiment synthesis
// wall-clock, candidate counts, speedup factors, memo-cache counters) is
// written to stdout and the human tables move to stderr, so CI can redirect
// the report into an artifact:
//
//	ocasbench -table1 -shrink 8 -json > BENCH_ci.json
//
// -baseline compares the run against a committed report and exits non-zero
// when total synthesis wall-clock regressed more than -regress percent:
//
//	ocasbench -table1 -shrink 8 -json -baseline BENCH_baseline.json > BENCH_ci.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"ocas/internal/experiments"
)

func main() {
	var (
		table1   = flag.Bool("table1", false, "regenerate Table 1")
		execPar  = flag.Bool("execpar", false, "run the multi-worker executor rows (hashjoin, externalsort at 1 and 4 workers)")
		fig8     = flag.Bool("fig8", false, "regenerate Figure 8")
		cache    = flag.Bool("cache", false, "run the cache-miss study (Section 7.2)")
		accuracy = flag.Bool("accuracy", false, "run the accuracy study (Section 7.3)")
		ingest   = flag.Bool("ingest", false, "run the ingest study: load generated rows into a durable catalog, re-execute from segments, verify identical digests")
		fused    = flag.Bool("fused", false, "run the fused-backend microbench: the same chains executed interpreted and fused, equality verified, wall-clocks compared")
		columnar = flag.Bool("columnar", false, "run the columnar-layout microbench: durable chains through the struct-of-arrays batch path, with allocs/op and bytes/op columns")
		all      = flag.Bool("all", false, "run everything")
		shrink   = flag.Int64("shrink", 1, "divide experiment sizes by this factor")
		strategy = flag.String("strategy", "exhaustive", "search strategy: exhaustive (full BFS) or beam (bounded frontier)")
		beam     = flag.Int("beam", 64, "beam width (-strategy beam only)")
		workers  = flag.Int("workers", 0, "synthesis worker pool size (0 = GOMAXPROCS)")
		tmpl     = flag.Bool("templates", false, "also measure template warm instantiation per Table 1 row (templateWarmSecs in the report)")
		jsonOut  = flag.Bool("json", false, "write the machine-readable bench report to stdout (tables move to stderr)")
		baseline = flag.String("baseline", "", "bench report to compare against; exit non-zero on regression")
		regress  = flag.Float64("regress", 30, "allowed synthesis wall-clock regression in percent (-baseline only)")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile (after a final GC) to this file")
	)
	flag.Parse()
	// fail exits without running defers, so the CPU profile is stopped
	// explicitly on every exit path that may follow StartCPUProfile.
	stopCPU := func() {}
	fail := func(err error) {
		stopCPU()
		fmt.Fprintln(os.Stderr, "ocasbench:", err)
		os.Exit(1)
	}
	if !*table1 && !*execPar && !*fig8 && !*cache && !*accuracy && !*ingest && !*fused && !*columnar && !*all {
		fmt.Fprintln(os.Stderr, "ocasbench: no experiment selected (use -table1, -fig8, -cache, -accuracy, -ingest, -fused, -columnar or -all)")
		flag.Usage()
		os.Exit(2)
	}
	if *baseline != "" && !*table1 && !*all {
		fail(fmt.Errorf("-baseline gates on Table 1 synthesis wall-clock; add -table1 (or -all)"))
	}
	cfg := experiments.Config{Shrink: *shrink, Strategy: *strategy, BeamWidth: *beam, Workers: *workers, Templates: *tmpl}
	if _, err := cfg.SearchStrategy(); err != nil {
		fail(err)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		stopCPU = func() {
			pprof.StopCPUProfile()
			f.Close()
			stopCPU = func() {}
		}
	}
	// Human-readable tables: stdout normally, stderr when stdout carries the
	// JSON report.
	var out io.Writer = os.Stdout
	if *jsonOut {
		out = os.Stderr
	}

	var table1Results, execParResults []*experiments.Result
	var ingestResults []*experiments.IngestResult
	if *table1 || *all {
		fmt.Fprintf(out, "== Table 1 (shrink %d) ==\n", *shrink)
		start := time.Now()
		rs, err := experiments.RunTable1(cfg, out)
		if err != nil {
			fail(err)
		}
		table1Results = rs
		fmt.Fprintf(out, "-- total %.1fs\n\n", time.Since(start).Seconds())
	}
	if *execPar || *all {
		fmt.Fprintln(out, "== Executor scaling (morsel-driven parallel execution) ==")
		rs, err := experiments.RunExecParallel(cfg, out)
		if err != nil {
			fail(err)
		}
		execParResults = rs
		fmt.Fprintln(out)
	}
	if *fig8 || *all {
		fmt.Fprintf(out, "== Figure 8 (shrink %d) ==\n", *shrink)
		if _, err := experiments.RunFigure8(cfg, out); err != nil {
			fail(err)
		}
		fmt.Fprintln(out)
	}
	if *cache || *all {
		fmt.Fprintln(out, "== Cache study (Section 7.2) ==")
		r, err := experiments.RunCacheStudy(cfg)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(out, "untiled: %.4gs   tiled: %.4gs   miss reduction: %.1f%%\n",
			r.UntiledSecs, r.TiledSecs, 100*r.MissReduction)
		fmt.Fprintf(out, "  untiled: opt=%.4g params=%v  %s\n", r.UntiledOpt, r.UntiledParams, r.UntiledProgram)
		fmt.Fprintf(out, "  tiled:   opt=%.4g params=%v  %s\n", r.TiledOpt, r.TiledParams, r.TiledProgram)
		fmt.Fprintln(out)
	}
	if *ingest || *all {
		fmt.Fprintf(out, "== Ingest study (durable catalog, shrink %d) ==\n", *shrink)
		rs, err := experiments.RunIngest(cfg, out)
		if err != nil {
			fail(err)
		}
		ingestResults = rs
		fmt.Fprintln(out)
	}
	var fusedResults []*experiments.FusedResult
	if *fused || *all {
		fmt.Fprintf(out, "== Fused backend (shrink %d) ==\n", *shrink)
		rs, err := experiments.RunFused(cfg, out)
		if err != nil {
			fail(err)
		}
		fusedResults = rs
		fmt.Fprintln(out)
	}
	var columnarResults []*experiments.ColumnarResult
	if *columnar || *all {
		fmt.Fprintf(out, "== Columnar layout (shrink %d) ==\n", *shrink)
		rs, err := experiments.RunColumnar(cfg, out)
		if err != nil {
			fail(err)
		}
		columnarResults = rs
		fmt.Fprintln(out)
	}
	if *accuracy || *all {
		fmt.Fprintln(out, "== Accuracy study (Section 7.3) ==")
		pts, err := experiments.AccuracyStudy(cfg)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(out, "%12s %12s\n", "selectivity", "est/act")
		for _, p := range pts {
			fmt.Fprintf(out, "%12.4f %12.3f\n", p.Selectivity, p.EstOverAct)
		}
		fmt.Fprintln(out)
	}

	stopCPU()
	report := experiments.NewBenchReport(cfg, table1Results, execParResults, ingestResults, fusedResults, columnarResults)
	// The timestamp is injected here rather than in the library, so report
	// construction stays clock-free and two runs of the same code differ
	// only where they should.
	report.Meta.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	if *jsonOut {
		if err := report.WriteJSON(os.Stdout); err != nil {
			fail(err)
		}
	}
	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fail(err)
		}
		base, err := experiments.ReadBenchReport(data)
		if err != nil {
			fail(err)
		}
		if err := experiments.CompareBaseline(report, base, *regress); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "ocasbench: synthesis wall-clock %.3fs within +%.0f%% of baseline %.3fs\n",
			report.TotalSynthSecs, *regress, base.TotalSynthSecs)
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fail(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail(err)
		}
		f.Close()
	}
}
