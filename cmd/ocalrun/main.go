// Command ocalrun interprets an OCAL program with the reference interpreter:
// useful for checking the semantics of a specification before synthesis.
//
// Usage:
//
//	ocalrun -prog prog.ocal -in 'R=[<1,10>,<2,20>];S=[<1,100>]' [-param k1=4]
//
// With -json, the result value is emitted together with the interpreter's
// step counters (expressions evaluated, functions applied, combinator
// steps), so two formulations of the same query can be compared by work
// done, not just by answer.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ocas/internal/interp"
	"ocas/internal/ocal"
)

func main() {
	var (
		progPath = flag.String("prog", "", "path to the OCAL program (- for stdin)")
		inputs   = flag.String("in", "", "inputs as name=<ocal literal>, ';' separated")
		params   = flag.String("param", "", "parameter bindings name=int, comma separated")
		asJSON   = flag.Bool("json", false, "emit the result and interpreter step counters as JSON")
	)
	flag.Parse()
	if *progPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	var src []byte
	var err error
	if *progPath == "-" {
		src, err = io.ReadAll(os.Stdin)
		if err != nil {
			die(fmt.Errorf("reading stdin: %w", err))
		}
	} else {
		src, err = os.ReadFile(*progPath)
		if err != nil {
			die(err)
		}
	}
	prog, err := ocal.ParseFile(string(src))
	if err != nil {
		die(err)
	}

	in := map[string]ocal.Value{}
	if *inputs != "" {
		for _, part := range strings.Split(*inputs, ";") {
			name, lit, ok := strings.Cut(strings.TrimSpace(part), "=")
			if !ok {
				die(fmt.Errorf("bad input %q", part))
			}
			v, err := parseValue(lit)
			if err != nil {
				die(fmt.Errorf("input %s: %w", name, err))
			}
			in[name] = v
		}
	}
	pb := map[string]int64{}
	if *params != "" {
		for _, part := range strings.Split(*params, ",") {
			name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
			if !ok {
				die(fmt.Errorf("bad parameter %q", part))
			}
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				die(err)
			}
			pb[name] = n
		}
	}

	it := interp.New(pb)
	res, err := it.Eval(prog, in)
	if err != nil {
		die(err)
	}
	if *asJSON {
		out := struct {
			Result string          `json:"result"`
			Steps  interp.Counters `json:"steps"`
		}{Result: res.String(), Steps: it.Counters()}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			die(err)
		}
		return
	}
	fmt.Println(res)
}

// parseValue reads an OCAL value literal by parsing it as an expression and
// evaluating it (literals only: lists, tuples, atoms).
func parseValue(lit string) (ocal.Value, error) {
	e, err := ocal.Parse(valueToExprSyntax(lit))
	if err != nil {
		return nil, err
	}
	return interp.Eval(e, nil, nil)
}

// valueToExprSyntax converts the value rendering [a, b] to expression syntax
// ([a] ++ [b]); tuples and atoms parse as-is.
func valueToExprSyntax(lit string) string {
	lit = strings.TrimSpace(lit)
	if !strings.HasPrefix(lit, "[") || !strings.HasSuffix(lit, "]") {
		return lit
	}
	inner := strings.TrimSpace(lit[1 : len(lit)-1])
	if inner == "" {
		return "[]"
	}
	var parts []string
	depth := 0
	start := 0
	for i, c := range inner {
		switch c {
		case '[', '<', '(':
			depth++
		case ']', '>', ')':
			depth--
		case ',':
			if depth == 0 {
				parts = append(parts, inner[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, inner[start:])
	for i, p := range parts {
		parts[i] = "[" + valueToExprSyntax(strings.TrimSpace(p)) + "]"
	}
	return "(" + strings.Join(parts, " ++ ") + ")"
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "ocalrun:", err)
	os.Exit(1)
}
