// Command ocas is the Out-of-Core Algorithm Synthesizer CLI: it reads a
// naive OCAL program and a memory hierarchy description, synthesizes the
// hierarchy-specialized algorithm, and prints the derivation, the tuned
// parameters, the cost estimates and (optionally) generated C code.
//
// Usage:
//
//	ocas -prog join.ocal -hier hdd-ram [-ram BYTES] \
//	     -in R=hdd:1048576,S=hdd:65536 [-out hdd] \
//	     [-commutative] [-depth 6] [-space 4000] \
//	     [-strategy exhaustive|beam -beam 64] [-workers 0] \
//	     [-c] [-json [-template-cache plans.json]] \
//	     [-run [-seed 1] [-batch 0] [-pool 0] [-exec-workers 1] [-explain] \
//	           [-backend interpreted|fused] [-data DIR -table R=mytable,...]]
//
// Built-in hierarchies: hdd-ram, hdd-ram-cache, two-hdd, hdd-flash; a JSON
// file path is accepted too.
//
// With -json, ocas emits the canonical machine-readable plan encoding of
// internal/plan instead of the human-readable report — byte-identical to
// what the ocasd service serves for the same request, fingerprint included.
// (The -json path enforces the service's knob bounds, and it always embeds
// the generated C when the winning program is generable, so -c is implied.)
// With -template-cache FILE, the -json path keeps a plan/template snapshot
// across invocations: a request whose shape is already captured re-optimizes
// at the new cardinalities instead of re-searching, and the emitted plan is
// byte-identical to a cold run either way.
//
// With -run, the synthesized algorithm executes on the storage simulator.
// Inputs are deterministically generated from -seed by default; -data DIR
// plus -table bindings read them from a durable table catalog instead (the
// same segment files ocasd ingests into), with byte-identical digests,
// ledgers and virtual clock. A bound input executes over the table's actual
// rows; its -in rows field only sizes the cost model during synthesis.
// -backend fused runs the plan through the compiled selection-vector kernels
// instead of the closure interpreter — same digest, ledger and virtual clock,
// less host CPU per row.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"ocas/internal/catalog"
	"ocas/internal/codegen"
	"ocas/internal/core"
	"ocas/internal/memory"
	"ocas/internal/ocal"
	"ocas/internal/plan"
	"ocas/internal/plancache"
	"ocas/internal/rules"
)

func main() {
	var (
		progPath  = flag.String("prog", "", "path to the naive OCAL program (- for stdin)")
		hierName  = flag.String("hier", "hdd-ram", "hierarchy: hdd-ram|hdd-ram-cache|two-hdd|hdd-flash or a JSON file")
		ramSize   = flag.Int64("ram", 32*int64(memory.MiB), "RAM size in bytes for built-in hierarchies")
		inputs    = flag.String("in", "", "inputs as name=node:rows[:arity], comma separated")
		output    = flag.String("out", "", "output node (empty = consumed by CPU)")
		commut    = flag.Bool("commutative", true, "inputs may be reordered (enables order-inputs, hash-part)")
		depth     = flag.Int("depth", 6, "maximum derivation length")
		space     = flag.Int("space", 4000, "maximum search space size")
		strategy  = flag.String("strategy", "exhaustive", "search strategy: exhaustive (full BFS) or beam (bounded frontier)")
		beam      = flag.Int("beam", 64, "beam width (frontier bound per depth, -strategy beam only)")
		workers   = flag.Int("workers", 0, "synthesis worker pool size (0 = GOMAXPROCS)")
		emitC     = flag.Bool("c", false, "emit C code for the synthesized algorithm")
		asJSON    = flag.Bool("json", false, "emit the canonical plan encoding (identical to the ocasd service response)")
		tmplFile  = flag.String("template-cache", "", "plan/template cache snapshot file for -json: known request shapes re-optimize at the new sizes instead of re-searching; updated in place")
		run       = flag.Bool("run", false, "execute the synthesized algorithm on the storage simulator with generated inputs")
		seed      = flag.Int64("seed", 1, "input generator seed (-run)")
		batch     = flag.Int64("batch", 0, "executor batch size in rows, 0 = default (-run)")
		poolB     = flag.Int64("pool", 0, "executor buffer pool budget in bytes, 0 = the RAM size (-run)")
		execW     = flag.Int("exec-workers", 1, "executor worker count for morsel-parallel execution (-run); never changes results, only wall-clock")
		backend   = flag.String("backend", "", "execution backend (-run): interpreted (default) or fused compiled kernels; never changes results, only host CPU time")
		explain   = flag.Bool("explain", false, "with -run: print the per-operator EXPLAIN ANALYZE tree (actuals plus est/act drift)")
		dataDir   = flag.String("data", "", "durable table catalog directory for -run -table bindings (the directory ocasd -data ingests into)")
		tableSpec = flag.String("table", "", "with -run: read inputs from durable tables as input=table, comma separated (requires -data)")
	)
	flag.Parse()
	if *progPath == "" || *inputs == "" {
		flag.Usage()
		os.Exit(2)
	}
	switch *backend {
	case "", plan.BackendInterpreted, plan.BackendFused:
	default:
		die(fmt.Errorf("unknown -backend %q (want %s or %s)", *backend, plan.BackendInterpreted, plan.BackendFused))
	}

	var src []byte
	var err error
	if *progPath == "-" {
		src, err = io.ReadAll(os.Stdin)
		if err != nil {
			die(fmt.Errorf("reading stdin: %w", err))
		}
	} else {
		src, err = os.ReadFile(*progPath)
		if err != nil {
			die(err)
		}
	}
	prog, err := ocal.ParseFile(string(src))
	if err != nil {
		die(err)
	}

	h, hierJSON, err := pickHierarchy(*hierName, *ramSize)
	if err != nil {
		die(err)
	}

	spec := core.Spec{Name: "cli", Prog: prog, Commutative: *commut}
	task := core.Task{InputLoc: map[string]string{}, InputRows: map[string]int64{}, Output: *output}
	arities := map[string]int{}
	for _, part := range strings.Split(*inputs, ",") {
		name, rest, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			die(fmt.Errorf("bad input spec %q", part))
		}
		fields := strings.Split(rest, ":")
		if len(fields) < 2 {
			die(fmt.Errorf("bad input spec %q (want name=node:rows[:arity])", part))
		}
		rows, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			die(err)
		}
		arity := 2
		if len(fields) >= 3 {
			a, err := strconv.Atoi(fields[2])
			if err != nil {
				die(err)
			}
			arity = a
		}
		typ := ocal.Type(ocal.TList(ocal.TTuple(ocal.TInt, ocal.TInt)))
		if arity == 1 {
			typ = ocal.TList(ocal.TInt)
		}
		spec.Inputs = append(spec.Inputs, core.InputSpec{Name: name, Type: typ, Arity: arity})
		task.InputLoc[name] = fields[0]
		task.InputRows[name] = rows
		arities[name] = arity
	}
	task.Spec = spec

	tables, cat, err := openTableBindings(*dataDir, *tableSpec, *run)
	if err != nil {
		die(err)
	}

	if *asJSON {
		req := plan.Request{
			Program:     string(src),
			Inputs:      map[string]plan.Input{},
			Output:      *output,
			Commutative: commut,
			Strategy:    *strategy,
			Depth:       *depth,
			Space:       *space,
			Workers:     *workers,
		}
		if *strategy == "beam" {
			req.Beam = *beam
		}
		if hierJSON != nil {
			req.Hierarchy = hierJSON
		} else {
			req.Hier, req.RAM = *hierName, *ramSize
		}
		for name, node := range task.InputLoc {
			req.Inputs[name] = plan.Input{Node: node, Rows: task.InputRows[name], Arity: arities[name]}
		}
		c, err := plan.Compile(req)
		if err != nil {
			die(err)
		}
		var p *plan.Plan
		if *tmplFile != "" {
			store := plancache.NewStore(1024, 64)
			if err := store.Load(*tmplFile); err != nil {
				die(err)
			}
			p, _, err = store.Resolve(context.Background(), c.Fingerprint, c.TemplateFingerprint,
				plancache.ResolveFuncs{
					Synthesize:  c.Run,
					Capture:     c.RunCapture,
					Instantiate: c.Instantiate,
				})
			if err != nil {
				die(err)
			}
			if err := store.Save(*tmplFile); err != nil {
				die(err)
			}
		} else {
			p, err = c.Run(context.Background())
			if err != nil {
				die(err)
			}
		}
		if !*run {
			os.Stdout.Write(plan.Encode(p))
			return
		}
		// -run -json: the canonical plan plus the execution report. (The
		// bare -json output stays byte-identical to the ocasd response.)
		rep, err := plan.ExecutePlan(context.Background(), c, p,
			plan.ExecOptions{Seed: *seed, BatchRows: *batch, PoolBytes: *poolB, ExecWorkers: *execW,
				Explain: *explain, Backend: *backend, Tables: tables, Cat: cat})
		if err != nil {
			die(err)
		}
		out := struct {
			Plan *plan.Plan       `json:"plan"`
			Exec *plan.ExecReport `json:"exec"`
		}{p, rep}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			die(err)
		}
		return
	}

	synth := &core.Synthesizer{H: h, MaxDepth: *depth, MaxSpace: *space, Workers: *workers}
	switch *strategy {
	case "", "exhaustive":
	case "beam":
		synth.Strategy = &rules.Beam{Width: *beam}
	default:
		die(fmt.Errorf("unknown -strategy %q (want exhaustive or beam)", *strategy))
	}
	res, err := synth.Synthesize(task)
	if err != nil {
		die(err)
	}

	fmt.Println("== hierarchy ==")
	fmt.Print(h.String())
	fmt.Println("== specification ==")
	fmt.Println(ocal.String(prog))
	fmt.Printf("   estimated cost: %.6g s\n", res.SpecSeconds)
	fmt.Println("== synthesized algorithm ==")
	fmt.Println(ocal.String(res.Best.Expr))
	fmt.Printf("   derivation:     %s\n", strings.Join(res.Best.Steps, " -> "))
	fmt.Printf("   parameters:     %v\n", res.Best.Params)
	fmt.Printf("   estimated cost: %.6g s (%.1fx better)\n",
		res.Best.Seconds, res.SpecSeconds/res.Best.Seconds)
	fmt.Printf("   search space:   %d programs, %d steps, synthesized in %s\n",
		res.Stats.SpaceSize, len(res.Best.Steps), res.Elapsed)

	if *emitC {
		csrc, err := codegen.Generate(res.Best.Expr, codegen.Options{
			FuncName:   "ocas_query",
			Params:     res.Best.Params,
			InputArity: arities,
			Output:     *output != "",
		})
		if err != nil {
			die(err)
		}
		fmt.Println("== generated C ==")
		fmt.Print(csrc)
	}

	if *run {
		rep, err := plan.RunProgram(context.Background(), h, res.Best.Expr, res.Best.Params, task,
			plan.ExecOptions{Seed: *seed, BatchRows: *batch, PoolBytes: *poolB, ExecWorkers: *execW,
				Explain: *explain, Backend: *backend, Tables: tables, Cat: cat})
		if err != nil {
			die(err)
		}
		fmt.Println("== execution ==")
		fmt.Printf("   input rows:     %v\n", rep.InputRows)
		if rep.Result != "" {
			fmt.Printf("   result:         %s\n", rep.Result)
		}
		fmt.Printf("   output rows:    %d (digest %s)\n", rep.OutRows, rep.OutDigest[:16])
		fmt.Printf("   measured cost:  %.6g s (estimated %.6g s)\n",
			rep.VirtualSeconds, res.Best.Seconds)
		for _, name := range sortedKeys(rep.Devices) {
			d := rep.Devices[name]
			fmt.Printf("   %-8s reads: %d inits / %d B   writes: %d inits / %d B\n",
				name, d.ReadInits, d.BytesRead, d.WriteInits, d.BytesWrite)
		}
		fmt.Printf("   buffer pool:    peak %d B of %d B budget, %d spill files (%d B spilled)\n",
			rep.Pool.PeakBytes, rep.Pool.Budget, rep.Pool.Spills, rep.Pool.SpillBytes)
		if rep.ExecWorkers > 1 {
			fmt.Printf("   exec workers:   %d\n", rep.ExecWorkers)
			for _, wl := range rep.Workers {
				fmt.Printf("     worker %d:     %d tasks, %.6g s, read %d B, wrote %d B\n",
					wl.Worker, wl.Tasks, wl.Seconds, wl.BytesRead, wl.BytesWrite)
			}
		}
		if rep.Explain != nil {
			fmt.Println("== explain analyze ==")
			fmt.Print(plan.RenderExplain(rep.Explain))
		}
	}
}

func sortedKeys(m map[string]plan.DeviceReport) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// pickHierarchy resolves -hier: a built-in name (rawJSON nil) or a JSON
// file, whose bytes are also returned so the -json path can embed them in
// the request without a second read.
func pickHierarchy(name string, ram int64) (h *memory.Hierarchy, rawJSON []byte, err error) {
	if h, ok := plan.BuiltinHierarchy(name, ram); ok {
		return h, nil, nil
	}
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, nil, fmt.Errorf("unknown hierarchy %q and not a readable file: %w", name, err)
	}
	h, err = memory.FromJSON(data)
	return h, data, err
}

// openTableBindings resolves -data and -table into the ExecOptions fields
// that make -run read bound inputs from durable catalog segments. The
// catalog stays open for the run and is released on process exit; the read
// path never mutates it.
func openTableBindings(dataDir, spec string, run bool) (map[string]string, *catalog.Catalog, error) {
	if spec == "" {
		return nil, nil, nil
	}
	if !run {
		return nil, nil, fmt.Errorf("-table requires -run")
	}
	if dataDir == "" {
		return nil, nil, fmt.Errorf("-table requires -data DIR (the catalog directory)")
	}
	tables := map[string]string{}
	for _, part := range strings.Split(spec, ",") {
		name, tbl, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" || tbl == "" {
			return nil, nil, fmt.Errorf("bad -table spec %q (want input=table)", part)
		}
		tables[name] = tbl
	}
	cat, err := catalog.Open(dataDir, catalog.Options{})
	if err != nil {
		return nil, nil, fmt.Errorf("open catalog %s: %w", dataDir, err)
	}
	return tables, cat, nil
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "ocas:", err)
	os.Exit(1)
}
