// Command ocasd is the synthesis daemon: a long-running HTTP service that
// memoizes OCAS synthesis behind a content-addressed plan cache, so a plan
// is synthesized once and served many times.
//
// Usage:
//
//	ocasd -addr :8080 -cache-size 1024 -template-cache 64 -persist plans.json \
//	      [-data ./data -flush-rows 65536 -mmap] \
//	      [-strategy beam -beam 64] [-workers 0] [-max-inflight 2] [-timeout 60s] \
//	      [-max-exec-rows 1048576] [-exec-workers 4] [-max-worker-slots 8] \
//	      [-exec-backend interpreted|fused] [-pprof ADDR] \
//	      [-trace-ring 256] [-trace-log traces.jsonl] [-log-json] [-access-log] [-no-obs]
//
// Endpoints (see internal/service):
//
//	POST /synthesize          synthesize (or serve) the plan for a request
//	POST /execute             resolve the plan, then run it on the storage
//	                          simulator (durable tables via exec.tables,
//	                          request-supplied, or generated inputs);
//	                          returns digest + virtual clock + per-device
//	                          ledger
//	GET  /plans/{fingerprint} fetch a cached plan by content address
//	POST /tables              create a durable table (name + column schema)
//	GET  /tables              list durable tables
//	GET  /tables/{name}       one table's schema, row count and segments
//	DELETE /tables/{name}     drop a table and its segment files
//	POST /tables/{name}/rows  bulk-load rows (JSON or text/csv body)
//	GET  /healthz             readiness report (uptime, build, cache
//	                          occupancy, worker slots)
//	GET  /stats               cache + service + catalog counters
//	GET  /metrics             Prometheus text exposition (latency
//	                          histograms split by cache outcome)
//	GET  /traces              recent request traces, newest first
//	GET  /traces/{id}         one trace by request ID
//
// Every response carries an X-Ocas-Request-Id header; the same ID fetches
// the request's trace and tags its access-log line. -trace-log appends each
// finished trace as a JSON line; -log-json switches the access log from
// text to JSON.
//
// With -persist, the plan and template caches are loaded at startup and
// written back on SIGINT/SIGTERM, so a restarted daemon keeps serving warm.
// A missing or corrupt snapshot is logged and the daemon starts cold; a
// failed save at shutdown is logged and exits nonzero.
// The template tier (-template-cache, on by default) memoizes the winning
// derivation per request *shape*, so a known shape at new input
// cardinalities re-optimizes in milliseconds instead of re-searching.
//
// With -data, the daemon opens the durable table catalog rooted at that
// directory: the /tables endpoints come alive and /execute resolves
// exec.tables bindings against it. Ingested rows buffer in memory and flush
// to columnar segment files every -flush-rows rows; the graceful-shutdown
// path flushes the remainder, so a SIGTERM-stopped daemon restarts with
// every ingested row durable.
//
// -exec-backend picks the default execution backend for /execute requests
// that don't set exec.backend ("fused" runs plans through the compiled
// selection-vector kernels; results, ledgers and the virtual clock are
// byte-identical to interpreted). -pprof ADDR serves net/http/pprof on a
// separate listener — the profiling mux is never mounted on the serving
// address.
package main

import (
	"context"
	"errors"
	"flag"
	"io"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ocas/internal/catalog"
	"ocas/internal/plan"
	"ocas/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		cacheSize   = flag.Int("cache-size", 1024, "maximum number of cached plans (LRU beyond that)")
		tmplSize    = flag.Int("template-cache", 64, "maximum number of cached plan templates, amortizing synthesis across cardinalities (0 disables the tier)")
		persist     = flag.String("persist", "", "plan-cache snapshot file (loaded at startup, saved at shutdown)")
		strategy    = flag.String("strategy", "", "default search strategy for requests that don't choose one: exhaustive or beam")
		beam        = flag.Int("beam", 0, "default beam width (with -strategy beam)")
		workers     = flag.Int("workers", 0, "synthesis worker pool size per job (0 = GOMAXPROCS)")
		maxInflight = flag.Int("max-inflight", 2, "maximum concurrent synthesis/execution jobs (admission control)")
		timeout     = flag.Duration("timeout", 60*time.Second, "per-request synthesis budget (requests may lower it via timeoutMs)")
		maxExecRows = flag.Int64("max-exec-rows", 1<<20, "largest per-input row count POST /execute will run")
		execWorkers = flag.Int("exec-workers", 1, "default executor worker count for /execute requests that don't choose one")
		execBackend = flag.String("exec-backend", "", "default execution backend for /execute requests that don't choose one: interpreted or fused")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this separate address (e.g. localhost:6060); empty disables profiling")
		maxSlots    = flag.Int("max-worker-slots", 0, "executor worker-slot pool shared by concurrent /execute runs (0 = GOMAXPROCS)")
		dataDir     = flag.String("data", "", "durable table catalog directory; empty disables the /tables endpoints and exec.tables bindings")
		flushRows   = flag.Int64("flush-rows", 0, "buffered rows per table before ingest cuts a columnar segment (0 = 65536)")
		useMmap     = flag.Bool("mmap", false, "read segment files through a read-only memory map instead of file reads (unix only)")
		traceRing   = flag.Int("trace-ring", 256, "recent request traces kept in memory for GET /traces")
		traceLog    = flag.String("trace-log", "", "append every finished request trace to this file, one JSON line each")
		logJSON     = flag.Bool("log-json", false, "emit the access log as JSON lines instead of text")
		accessLog   = flag.Bool("access-log", true, "log one structured line per request (method, path, status, duration, request ID)")
		disableObs  = flag.Bool("no-obs", false, "disable per-request tracing, latency histograms and access logging")
	)
	flag.Parse()
	switch *strategy {
	case "", "exhaustive", "beam":
	default:
		log.Fatalf("ocasd: unknown -strategy %q (want exhaustive or beam)", *strategy)
	}
	switch *execBackend {
	case "", plan.BackendInterpreted, plan.BackendFused:
	default:
		log.Fatalf("ocasd: unknown -exec-backend %q (want %s or %s)",
			*execBackend, plan.BackendInterpreted, plan.BackendFused)
	}

	var logger *slog.Logger
	if *accessLog {
		if *logJSON {
			logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
		} else {
			logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
		}
	}
	var traceSink io.Writer
	if *traceLog != "" {
		f, err := os.OpenFile(*traceLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("ocasd: -trace-log: %v", err)
		}
		defer f.Close()
		traceSink = f
	}

	var cat *catalog.Catalog
	if *dataDir != "" {
		var err error
		cat, err = catalog.Open(*dataDir, catalog.Options{FlushRows: *flushRows, Mmap: *useMmap})
		if err != nil {
			log.Fatalf("ocasd: open catalog %s: %v", *dataDir, err)
		}
		st := cat.Stats()
		log.Printf("ocasd: catalog %s: %d tables, %d rows in %d segments",
			*dataDir, st.Tables, st.Rows, st.Segments)
	}

	srv := service.New(service.Config{
		CacheSize:         *cacheSize,
		TemplateCacheSize: *tmplSize,
		MaxInflight:       *maxInflight,
		Timeout:           *timeout,
		MaxExecRows:       *maxExecRows,
		ExecWorkers:       *execWorkers,
		ExecBackend:       *execBackend,
		MaxWorkerSlots:    *maxSlots,
		Strategy:          *strategy,
		Beam:              *beam,
		Workers:           *workers,
		Catalog:           cat,
		TraceRing:         *traceRing,
		TraceLog:          traceSink,
		AccessLog:         logger,
		DisableObs:        *disableObs,
	}, nil)
	store := srv.Store()
	if *persist != "" {
		if err := store.Load(*persist); err != nil {
			// A bad snapshot should not keep the daemon down: log it and
			// start cold. The file is rewritten on clean shutdown.
			log.Printf("ocasd: load %s: %v (starting with a cold cache)", *persist, err)
		}
		if st := store.Stats(); st.Plans.Size > 0 || st.Templates.Size > 0 {
			log.Printf("ocasd: loaded %d cached plans and %d templates from %s",
				st.Plans.Size, st.Templates.Size, *persist)
		}
	}

	if *pprofAddr != "" {
		// Profiling gets its own mux on its own listener: the serving mux
		// never exposes the pprof endpoints, so an operator can firewall the
		// profiling port independently of the API.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("ocasd: pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pmux); err != nil {
				log.Printf("ocasd: pprof server: %v", err)
			}
		}()
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("ocasd: listening on %s (cache %d plans, %d in-flight jobs, %s budget)",
		*addr, *cacheSize, *maxInflight, *timeout)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("ocasd: %v", err)
	case sig := <-sigc:
		log.Printf("ocasd: %v, shutting down", sig)
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("ocasd: shutdown: %v", err)
	}
	if cat != nil {
		// Close flushes each table's buffered rows into a final segment, so
		// a clean shutdown leaves every ingested row durable on disk.
		if err := cat.Close(); err != nil {
			log.Printf("ocasd: close catalog: %v", err)
			os.Exit(1)
		}
	}
	if *persist != "" {
		if err := store.Save(*persist); err != nil {
			log.Printf("ocasd: save %s: %v", *persist, err)
			os.Exit(1)
		}
		st := store.Stats()
		log.Printf("ocasd: persisted %d plans and %d templates to %s",
			st.Plans.Size, st.Templates.Size, *persist)
	}
}
