// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 7). Each benchmark runs the corresponding experiment pipeline:
// synthesis (search + costing + parameter optimization) followed by
// simulated execution on generated data. Run with:
//
//	go test -bench=. -benchmem
//
// BenchmarkTable1/<row> covers the sixteen Table 1 rows; BenchmarkFigure8
// the estimated-vs-measured sweeps; BenchmarkCacheStudy and
// BenchmarkAccuracyStudy the Section 7.2/7.3 studies; and
// BenchmarkSynthesizer* isolates the synthesizer runtime measurements of
// Section 7.4 (search space growth, input-size independence).
package ocas_test

import (
	"context"
	"io"
	"runtime"
	"testing"

	"ocas/internal/core"
	"ocas/internal/experiments"
	"ocas/internal/interp"
	"ocas/internal/memory"
	"ocas/internal/ocal"
	"ocas/internal/rules"
)

// benchCfg keeps per-iteration work bounded; the shapes (who wins, by what
// factor) are scale-robust, which is what the assertions in the experiment
// tests check.
var benchCfg = experiments.Config{Shrink: 8}

func BenchmarkTable1(b *testing.B) {
	exps, err := experiments.Table1(benchCfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range exps {
		e := e
		b.Run(e.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Run(e); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure8(benchCfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCacheStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunCacheStudy(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAccuracyStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AccuracyStudy(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynthesizerJoin measures the synthesizer itself (Section 7.4):
// runtime grows with the search space, not with the input size.
func BenchmarkSynthesizerJoin(b *testing.B) {
	for _, size := range []int64{1 << 10, 1 << 20, 1 << 30} {
		size := size
		b.Run(byteLabel(size), func(b *testing.B) {
			s := &core.Synthesizer{H: memory.HDDRAM(8 * memory.MiB), MaxDepth: 6, MaxSpace: 2000}
			for i := 0; i < b.N; i++ {
				_, err := s.Synthesize(core.Task{
					Spec:      core.JoinSpec(true),
					InputLoc:  map[string]string{"R": "hdd", "S": "hdd"},
					InputRows: map[string]int64{"R": size, "S": size / 32},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSynthesizerDepth shows the ~exponential growth of the search
// space with the number of transformation steps.
func BenchmarkSynthesizerDepth(b *testing.B) {
	for _, depth := range []int{2, 4, 6} {
		depth := depth
		b.Run(depthLabel(depth), func(b *testing.B) {
			s := &core.Synthesizer{H: memory.HDDRAM(8 * memory.MiB), MaxDepth: depth, MaxSpace: 50000}
			var space int
			for i := 0; i < b.N; i++ {
				res, err := s.Synthesize(core.Task{
					Spec:      core.JoinSpec(true),
					InputLoc:  map[string]string{"R": "hdd", "S": "hdd"},
					InputRows: map[string]int64{"R": 1 << 20, "S": 1 << 15},
				})
				if err != nil {
					b.Fatal(err)
				}
				space = res.Stats.SpaceSize
			}
			b.ReportMetric(float64(space), "programs")
		})
	}
}

// BenchmarkSynthesizerParallel compares the end-to-end pipeline (search,
// costing, screening, optimization) at one worker versus the full
// GOMAXPROCS pool. On a multi-core runner the parallel variant shows the
// wall-clock win; results are identical either way (see
// core.TestSynthesizeParallelMatchesSequential).
func BenchmarkSynthesizerParallel(b *testing.B) {
	task := core.Task{
		Spec:      core.JoinSpec(true),
		InputLoc:  map[string]string{"R": "hdd", "S": "hdd"},
		InputRows: map[string]int64{"R": 1 << 20, "S": 1 << 15},
	}
	for _, cfg := range []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{"parallel", runtime.GOMAXPROCS(0)},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			s := &core.Synthesizer{H: memory.HDDRAM(8 * memory.MiB),
				MaxDepth: 6, MaxSpace: 5000, Workers: cfg.workers}
			for i := 0; i < b.N; i++ {
				if _, err := s.Synthesize(task); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSearchStrategies compares the exhaustive search with the
// bounded-frontier beam (which explores a fraction of the space) and the
// worker-pool scaling of the exhaustive expansion.
func BenchmarkSearchStrategies(b *testing.B) {
	spec := core.SortSpec()
	mkCtx := func() *rules.Context {
		return &rules.Context{
			H:           memory.HDDRAM(8 * memory.MiB),
			InputLoc:    map[string]string{"R": "hdd"},
			Commutative: true,
		}
	}
	for _, cfg := range []struct {
		name  string
		strat rules.SearchStrategy
	}{
		{"exhaustive-1worker", rules.Exhaustive{Workers: 1}},
		{"exhaustive-allworkers", rules.Exhaustive{}},
		{"beam-16", rules.Beam{Width: 16}},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			var space int
			for i := 0; i < b.N; i++ {
				ds, _ := cfg.strat.Search(context.Background(), spec.Prog, rules.AllRules(), mkCtx(), 10, 50000)
				space = len(ds)
			}
			b.ReportMetric(float64(space), "programs")
		})
	}
}

// BenchmarkSearchOnly isolates the rewrite engine.
func BenchmarkSearchOnly(b *testing.B) {
	spec := core.JoinSpec(true)
	ctx := &rules.Context{
		H:           memory.HDDRAM(8 * memory.MiB),
		InputLoc:    map[string]string{"R": "hdd", "S": "hdd"},
		Commutative: true,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rules.Search(spec.Prog, rules.AllRules(), ctx, 5, 5000)
	}
}

// BenchmarkInterpreter measures the reference interpreter on the merge sort
// (the equivalence oracle used by the rule tests).
func BenchmarkInterpreter(b *testing.B) {
	prog := ocal.MustParse(`treeFold[4]([], unfoldR(funcPow[2](mrg)))(R)`)
	seed := make(ocal.List, 512)
	for i := range seed {
		seed[i] = ocal.List{ocal.Int(int64((i * 2654435761) % 10007))}
	}
	in := map[string]ocal.Value{"R": seed}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := interp.Eval(prog, in, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func byteLabel(n int64) string {
	switch {
	case n >= 1<<30:
		return "rows-1Gi"
	case n >= 1<<20:
		return "rows-1Mi"
	}
	return "rows-1Ki"
}

func depthLabel(d int) string {
	return "depth-" + string(rune('0'+d))
}
